"""Behavioural tests for the update agent (Algorithm 1)."""

import pytest

from repro.core.config import MARPConfig
from repro.core.protocol import MARP
from repro.net.faults import CrashSchedule, FaultPlan
from repro.replication.deployment import Deployment


class TestSingleUpdate:
    def test_commits_at_all_replicas(self, deployment5):
        marp = MARP(deployment5)
        record = marp.submit_write("s1", "x", 42)
        deployment5.run(until=100_000)
        assert record.status == "committed"
        for host in deployment5.hosts:
            assert deployment5.server(host).store.read("x").value == 42

    def test_uncontended_visits_exactly_majority(self, deployment5):
        marp = MARP(deployment5)
        record = marp.submit_write("s1", "x", 1)
        deployment5.run(until=100_000)
        assert record.visits_to_lock == 3  # ceil((5+1)/2)

    def test_timeline_fields_populated(self, deployment5):
        marp = MARP(deployment5)
        record = marp.submit_write("s2", "x", 1)
        deployment5.run(until=100_000)
        assert record.dispatched_at is not None
        assert record.lock_acquired_at >= record.dispatched_at
        assert record.completed_at > record.lock_acquired_at
        assert record.agent_id is not None
        assert record.extra["win_reason"] == "majority"

    def test_versions_increment_across_updates(self, deployment5):
        marp = MARP(deployment5)
        marp.submit_write("s1", "x", "first")
        deployment5.run(until=50_000)
        marp.submit_write("s2", "x", "second")
        deployment5.run(until=100_000)
        server = deployment5.server("s3")
        assert server.store.read("x").version == 2
        assert server.store.read("x").value == "second"

    def test_distinct_keys_version_independently(self, deployment5):
        marp = MARP(deployment5)
        marp.submit_write("s1", "a", 1)
        marp.submit_write("s2", "b", 2)
        deployment5.run(until=100_000)
        server = deployment5.server("s1")
        assert server.store.read("a").version == 1
        assert server.store.read("b").version == 1

    def test_agent_disposed_after_commit(self, deployment5):
        marp = MARP(deployment5)
        marp.submit_write("s1", "x", 1)
        deployment5.run(until=100_000)
        assert marp.live_agents() == []
        assert marp.total_agent_hops() >= 2

    def test_empty_batch_rejected(self, deployment5):
        from repro.agents.identity import AgentId
        from repro.core.update_agent import UpdateAgent

        marp = MARP(deployment5)
        with pytest.raises(ValueError):
            UpdateAgent(AgentId("s1", 0.0, 0), marp, [])


class TestContention:
    def test_concurrent_writes_all_commit(self, deployment5):
        marp = MARP(deployment5)
        records = [
            marp.submit_write(host, "x", index)
            for index, host in enumerate(deployment5.hosts)
        ]
        deployment5.run(until=500_000)
        assert all(r.status == "committed" for r in records)

    def test_concurrent_writes_single_total_order(self, deployment5):
        marp = MARP(deployment5)
        for index, host in enumerate(deployment5.hosts):
            marp.submit_write(host, "x", index)
        deployment5.run(until=500_000)
        identities = {
            tuple(deployment5.server(h).history.identities())
            for h in deployment5.hosts
        }
        assert len(identities) == 1
        versions = [v for _r, _k, v in next(iter(identities))]
        assert versions == [1, 2, 3, 4, 5]

    def test_visit_bounds_respected_under_contention(self, deployment5):
        marp = MARP(deployment5)
        for index, host in enumerate(deployment5.hosts * 2):
            marp.submit_write(host, "x", index)
        deployment5.run(until=1_000_000)
        for record in marp.completed_writes():
            assert 3 <= record.visits_to_lock <= 5


class TestFailures:
    def test_commits_with_minority_down(self):
        faults = FaultPlan(crashes=CrashSchedule().add("s5", 0, 1_000_000))
        dep = Deployment(n_replicas=5, seed=0, faults=faults)
        marp = MARP(dep)
        record = marp.submit_write("s1", "x", 1)
        dep.run(until=1_000_000)
        assert record.status == "committed"
        for host in ("s1", "s2", "s3", "s4"):
            assert dep.server(host).store.read("x").value == 1

    def test_crashed_replica_catches_up_after_recovery(self):
        faults = FaultPlan(crashes=CrashSchedule().add("s3", 0, 5_000))
        dep = Deployment(n_replicas=5, seed=0, faults=faults)
        marp = MARP(dep)
        record = marp.submit_write("s1", "x", "while-down")
        dep.run(until=100_000)
        assert record.status == "committed"
        assert dep.server("s3").store.read("x").value == "while-down"


class TestReadPaths:
    def test_local_read_returns_committed_value(self, deployment5):
        marp = MARP(deployment5)
        marp.submit_write("s1", "x", 5)
        deployment5.run(until=50_000)
        record = marp.submit_read("s2", "x")
        deployment5.run(until=60_000)
        assert record.status == "read-done"
        assert record.value == 5
        assert record.extra["read_strategy"] == "local"

    def test_local_read_of_missing_key(self, deployment5):
        marp = MARP(deployment5)
        record = marp.submit_read("s1", "ghost")
        deployment5.run(until=10_000)
        assert record.status == "read-done"
        assert record.value is None

    def test_quorum_read_sees_majority_freshness(self, deployment5):
        config = MARPConfig(read_strategy="quorum")
        marp = MARP(deployment5, config=config)
        marp.submit_write("s1", "x", "committed")
        deployment5.run(until=50_000)
        record = marp.submit_read("s2", "x")
        deployment5.run(until=60_000)
        assert record.status == "read-done"
        assert record.value == "committed"
        assert record.extra["read_strategy"] == "quorum"
        assert record.extra["replies"] >= 3


class TestBatching:
    def test_batched_writes_share_one_agent(self, deployment5):
        config = MARPConfig(batch_size=3)
        marp = MARP(deployment5, config=config)
        records = [marp.submit_write("s1", "x", i) for i in range(3)]
        deployment5.run(until=100_000)
        assert all(r.status == "committed" for r in records)
        assert len(marp.agents) == 1
        assert len({r.agent_id for r in records}) == 1

    def test_partial_batch_flushed_by_timer(self, deployment5):
        config = MARPConfig(batch_size=4, batch_flush_interval=50.0)
        marp = MARP(deployment5, config=config)
        record = marp.submit_write("s1", "x", 1)
        deployment5.run(until=100_000)
        assert record.status == "committed"
        assert marp.batcher.timer_flushes == 1

    def test_batched_versions_sequential(self, deployment5):
        config = MARPConfig(batch_size=2)
        marp = MARP(deployment5, config=config)
        marp.submit_write("s1", "x", "a")
        marp.submit_write("s1", "x", "b")
        deployment5.run(until=100_000)
        server = deployment5.server("s4")
        assert server.store.read("x").version == 2
        assert server.store.read("x").value == "b"
        assert [v for _r, _k, v in server.history.identities()] == [1, 2]
