"""Result-cache correctness: keying, invalidation, corruption handling.

The cache may only ever serve a result for a *byte-identical* config
under the *same* code version. These tests pin the key down: a hit on
an unchanged config, a miss on every single-field change (including
fields nested inside :class:`FaultPlan` and the MARP-only knobs), a
miss after a code-version bump, and a warning + live-run fallback for
corrupted or truncated entries.
"""

import pickle

import pytest

from repro.experiments.cache import (
    ResultCache,
    code_version,
    config_key,
    result_fingerprint,
)
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import RunConfig, run_once
from repro.net.faults import CrashSchedule, FaultPlan, TransientLinkFaults

BASE = RunConfig(
    n_replicas=3, seed=5, mean_interarrival=80.0, requests_per_client=3
)

#: One changed value per RunConfig field (all different from BASE).
FIELD_CHANGES = {
    "protocol": "primary-copy",
    "n_replicas": 5,
    "seed": 6,
    "mean_interarrival": 80.5,
    "requests_per_client": 4,
    "write_fraction": 0.9,
    "keys": ("x", "y"),
    "latency": "wan",
    "topology": "random-costs",
    "horizon": 4_000_000.0,
    "faults": FaultPlan(crashes=CrashSchedule().add("s1", 10.0, 20.0)),
    "itinerary": "random-order",
    "batch_size": 2,
    "read_strategy": "remote-majority",
    "agent_service_time": 2.5,
    "update_apply_time": 0.75,
    "enable_bulletin": False,
    "protocol_kwargs": {"quorum": 2},
    "audit_exclude": ("s1",),
    "streaming": True,
    "key_skew": 0.8,
    "n_keys": 32,
    "workload_chunk": 256,
    "ul_retention": 5_000.0,
    "inbox_ttl": 10_000.0,
    "delta_views": True,
}


def _fault_plan(drop=0.0, crash_window=(10.0, 20.0), outage=None):
    crashes = CrashSchedule().add("s1", *crash_window)
    links = TransientLinkFaults(drop_probability=drop)
    if outage is not None:
        links.add_outage("s1", "s2", *outage)
    return FaultPlan(crashes=crashes, links=links)


class TestConfigKey:
    def test_identical_configs_same_key(self):
        assert config_key(BASE) == config_key(BASE.with_())

    def test_every_field_change_changes_key(self):
        import dataclasses

        field_names = {f.name for f in dataclasses.fields(RunConfig)}
        assert field_names == set(FIELD_CHANGES), (
            "FIELD_CHANGES out of sync with RunConfig — add the new "
            "field so its cache-key sensitivity is covered"
        )
        base_key = config_key(BASE)
        keys = {base_key}
        for name, value in FIELD_CHANGES.items():
            key = config_key(BASE.with_(**{name: value}))
            assert key != base_key, f"changing {name!r} did not change the key"
            keys.add(key)
        # and all changes are mutually distinct
        assert len(keys) == len(FIELD_CHANGES) + 1

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda: _fault_plan(crash_window=(10.0, 25.0)),
            lambda: _fault_plan(drop=0.05),
            lambda: _fault_plan(outage=(50.0, 60.0)),
        ],
        ids=["crash-window", "drop-probability", "link-outage"],
    )
    def test_nested_fault_plan_fields_change_key(self, mutate):
        base = config_key(BASE.with_(faults=_fault_plan()))
        assert config_key(BASE.with_(faults=mutate())) != base

    def test_code_version_bump_changes_key(self):
        assert config_key(BASE) != config_key(BASE, version="other-version")

    def test_uncacheable_protocol_kwargs_raise(self):
        bad = BASE.with_(protocol_kwargs={"hook": lambda: None})
        with pytest.raises(TypeError):
            config_key(bad)


class TestResultCache:
    def test_roundtrip_hit_on_identical_config(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_once(BASE)
        assert cache.get(BASE) is None  # cold
        assert cache.put(BASE, result)
        cached = cache.get(BASE.with_())  # equal but distinct object
        assert cached is not None
        assert cached.deployment is None
        assert result_fingerprint(cached) == result_fingerprint(result)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_miss_on_changed_config(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(BASE, run_once(BASE))
        assert cache.get(BASE.with_(seed=BASE.seed + 1)) is None

    def test_version_bump_invalidates(self, tmp_path):
        ResultCache(tmp_path).put(BASE, run_once(BASE))
        newer = ResultCache(tmp_path, version=code_version() + ".post1")
        assert newer.get(BASE) is None

    def test_uncacheable_config_is_silently_skipped(self, tmp_path):
        cache = ResultCache(tmp_path)
        bad = BASE.with_(protocol_kwargs={"hook": lambda: None})
        result = run_once(BASE)  # any result object will do
        assert not cache.put(bad, result)
        assert cache.get(bad) is None
        assert cache.uncacheable == 2
        assert len(cache) == 0

    @pytest.mark.parametrize(
        ("corrupt", "warns"),
        [
            (lambda p: p.write_bytes(b"not a pickle"), True),
            (
                lambda p: p.write_bytes(
                    p.read_bytes()[: p.stat().st_size // 2]
                ),
                True,
            ),
            # unpickles fine but fails envelope validation: a silent miss
            (lambda p: p.write_bytes(pickle.dumps({"version": "x"})), False),
        ],
        ids=["garbage", "truncated", "wrong-envelope"],
    )
    def test_corrupt_entry_warns_and_misses(self, tmp_path, corrupt, warns):
        cache = ResultCache(tmp_path)
        result = run_once(BASE)
        cache.put(BASE, result)
        (path,) = tmp_path.glob("*/*.pkl")
        corrupt(path)
        if warns:
            with pytest.warns(RuntimeWarning, match="corrupt cache entry"):
                assert cache.get(BASE) is None
        else:
            assert cache.get(BASE) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_replaced_by_live_run(self, tmp_path):
        """End-to-end: runner warns, re-runs, and repairs the entry."""
        cache = ResultCache(tmp_path)
        expected = result_fingerprint(run_once(BASE))
        with ParallelRunner(cache=cache) as runner:
            runner.run_one(BASE)
            (path,) = tmp_path.glob("*/*.pkl")
            path.write_bytes(b"\x00garbage")
            with pytest.warns(RuntimeWarning, match="corrupt cache entry"):
                repaired = runner.run_one(BASE)
        assert result_fingerprint(repaired) == expected
        # the live run re-published a good entry
        assert result_fingerprint(cache.get(BASE)) == expected

    def test_clear_and_len(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_once(BASE)
        cache.put(BASE, result)
        cache.put(BASE.with_(seed=9), run_once(BASE.with_(seed=9)))
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get(BASE) is None


class TestRunnerCacheIntegration:
    def test_hit_counts_through_runner(self, tmp_path):
        cache = ResultCache(tmp_path)
        with ParallelRunner(cache=cache) as runner:
            first = runner.run_one(BASE)
            second = runner.run_one(BASE)
        assert (cache.hits, cache.misses) == (1, 1)
        assert result_fingerprint(first) == result_fingerprint(second)

    def test_cached_equals_parallel_fresh(self, tmp_path):
        configs = [BASE.with_(seed=s) for s in (1, 2, 3)]
        with ParallelRunner(jobs=2, cache=ResultCache(tmp_path)) as cold:
            fresh = [result_fingerprint(r) for r in cold.run_many(configs)]
        warm_cache = ResultCache(tmp_path)
        with ParallelRunner(jobs=2, cache=warm_cache) as warm:
            cached = [result_fingerprint(r) for r in warm.run_many(configs)]
        assert cached == fresh
        assert warm_cache.hits == len(configs)
        assert warm_cache.misses == 0
