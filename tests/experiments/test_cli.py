"""Tests for the CLI entry point (tiny fast settings)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_accepted(self):
        parser = build_parser()
        for command in (
            "fig2", "fig3", "fig4", "compare", "wan", "theorems",
            "ablations", "live", "obs", "all",
        ):
            assert parser.parse_args([command]).command == command

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.repeats == 2
        assert args.requests == 20
        assert args.seed == 0
        assert not args.quick
        assert args.format == "text"
        assert args.metrics_out is None
        assert args.trace_out is None
        assert not args.self_check

    def test_options(self):
        args = build_parser().parse_args(
            ["fig4", "--quick", "--seed", "9", "--requests", "5",
             "--format", "json"]
        )
        assert args.quick
        assert args.seed == 9
        assert args.requests == 5
        assert args.format == "json"


class TestExecution:
    def test_fig4_quick_text(self, capsys):
        code = main(["fig4", "--quick", "--requests", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "K=3" in out

    def test_fig4_quick_json(self, capsys):
        main(["fig4", "--quick", "--requests", "4", "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        assert "series" in data
        assert set(data["series"]) == {"K=3", "K=4", "K=5"}

    def test_fig2_quick_csv(self, capsys):
        main(["fig2", "--quick", "--requests", "4", "--format", "csv"])
        out = capsys.readouterr().out
        header = out.splitlines()[0]
        assert header.startswith("mean inter-arrival")
        assert "3 servers" in header

    def test_theorems_quick(self, capsys):
        code = main(["theorems", "--quick", "--requests", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Theorem 3 (N=3)" in out
        assert "HOLDS" in out

    def test_live_quick(self, capsys):
        code = main(["live", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "committed 6/6" in out
        assert "consistent=True" in out


class TestObsCommand:
    def test_obs_quick_report(self, capsys):
        code = main(["obs", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "marp_att_ms" in out
        assert "consistent=True" in out
        assert "[obs] " in out

    def test_obs_self_check(self, capsys):
        code = main(["obs", "--self-check"])
        assert code == 0
        assert "checks passed" in capsys.readouterr().out

    def test_obs_leaves_no_global_hub(self):
        from repro.obs import get_hub

        main(["obs", "--quick"])
        assert get_hub() is None

    def test_unwritable_export_path_fails_fast(self):
        with pytest.raises(SystemExit, match="does not exist"):
            main(["obs", "--quick",
                  "--metrics-out", "/nonexistent-dir/m.jsonl"])

    def test_metrics_out_on_experiment_command(self, tmp_path, capsys):
        from repro.obs.export import read_jsonl

        metrics_path = tmp_path / "m.jsonl"
        trace_path = tmp_path / "t.jsonl"
        code = main([
            "fig4", "--quick", "--requests", "4",
            "--metrics-out", str(metrics_path),
            "--trace-out", str(trace_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"-> {metrics_path}" in out
        metrics = read_jsonl(str(metrics_path))
        assert len({r["name"] for r in metrics}) >= 6
        assert all(r["type"] == "metric" for r in metrics)
        trace = read_jsonl(str(trace_path))
        assert {r["type"] for r in trace} <= {"span", "event"}
        assert any(r["name"] == "experiment.run" for r in trace)
