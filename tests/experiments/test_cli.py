"""Tests for the CLI entry point (tiny fast settings)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_accepted(self):
        parser = build_parser()
        for command in (
            "fig2", "fig3", "fig4", "compare", "wan", "theorems",
            "ablations", "live", "all",
        ):
            assert parser.parse_args([command]).command == command

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.repeats == 2
        assert args.requests == 20
        assert args.seed == 0
        assert not args.quick
        assert args.format == "text"

    def test_options(self):
        args = build_parser().parse_args(
            ["fig4", "--quick", "--seed", "9", "--requests", "5",
             "--format", "json"]
        )
        assert args.quick
        assert args.seed == 9
        assert args.requests == 5
        assert args.format == "json"


class TestExecution:
    def test_fig4_quick_text(self, capsys):
        code = main(["fig4", "--quick", "--requests", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "K=3" in out

    def test_fig4_quick_json(self, capsys):
        main(["fig4", "--quick", "--requests", "4", "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        assert "series" in data
        assert set(data["series"]) == {"K=3", "K=4", "K=5"}

    def test_fig2_quick_csv(self, capsys):
        main(["fig2", "--quick", "--requests", "4", "--format", "csv"])
        out = capsys.readouterr().out
        header = out.splitlines()[0]
        assert header.startswith("mean inter-arrival")
        assert "3 servers" in header

    def test_theorems_quick(self, capsys):
        code = main(["theorems", "--quick", "--requests", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Theorem 3 (N=3)" in out
        assert "HOLDS" in out

    def test_live_quick(self, capsys):
        code = main(["live", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "committed 6/6" in out
        assert "consistent=True" in out
