"""Tests for the CLI entry point (tiny fast settings)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_accepted(self):
        parser = build_parser()
        for command in (
            "fig2", "fig3", "fig4", "compare", "wan", "theorems",
            "ablations", "live", "obs", "bench", "adversary", "all",
        ):
            assert parser.parse_args([command]).command == command

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.repeats == 2
        assert args.requests == 20
        assert args.seed == 0
        assert not args.quick
        assert args.format == "text"
        assert args.metrics_out is None
        assert args.trace_out is None
        assert args.trace_format == "jsonl"
        assert not args.self_check
        assert args.compare is None
        assert args.bench_suite == "all"
        assert args.out_dir == "."
        assert args.threshold == 0.10
        assert args.schedules == 200
        assert args.index is None
        assert args.replay is None
        assert args.save_failures is None
        assert args.hosts is None

    def test_options(self):
        args = build_parser().parse_args(
            ["fig4", "--quick", "--seed", "9", "--requests", "5",
             "--format", "json"]
        )
        assert args.quick
        assert args.seed == 9
        assert args.requests == 5
        assert args.format == "json"


class TestExecution:
    def test_fig4_quick_text(self, capsys):
        code = main(["fig4", "--quick", "--requests", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "K=3" in out

    def test_fig4_quick_json(self, capsys):
        main(["fig4", "--quick", "--requests", "4", "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        assert "series" in data
        assert set(data["series"]) == {"K=3", "K=4", "K=5"}

    def test_fig2_quick_csv(self, capsys):
        main(["fig2", "--quick", "--requests", "4", "--format", "csv"])
        out = capsys.readouterr().out
        header = out.splitlines()[0]
        assert header.startswith("mean inter-arrival")
        assert "3 servers" in header

    def test_theorems_quick(self, capsys):
        code = main(["theorems", "--quick", "--requests", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Theorem 3 (N=3)" in out
        assert "HOLDS" in out

    def test_live_quick(self, capsys):
        code = main(["live", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "committed 6/6" in out
        assert "consistent=True" in out


class TestObsCommand:
    def test_obs_quick_report(self, capsys):
        code = main(["obs", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "marp_att_ms" in out
        assert "consistent=True" in out
        assert "[obs] " in out

    def test_obs_self_check(self, capsys):
        code = main(["obs", "--self-check"])
        assert code == 0
        out = capsys.readouterr().out
        assert "checks passed" in out
        # passed/total, never the degenerate N/N-with-failures form
        import re

        match = re.search(r"(\d+)/(\d+) checks passed", out)
        assert match is not None
        assert match.group(1) == match.group(2)  # exit 0 => all passed

    def test_obs_self_check_reports_failures(self, capsys, monkeypatch):
        """A failing check yields passed<total and a nonzero exit."""
        import repro.obs
        from repro.obs.selfcheck import SelfCheckReport

        def broken(verbose=False):
            return SelfCheckReport(
                passed=["a", "b"], failed=["c: boom"]
            )

        monkeypatch.setattr(repro.obs, "self_check", broken)
        code = main(["obs", "--self-check"])
        captured = capsys.readouterr()
        assert code == 1
        assert "2/3 checks passed" in captured.out
        assert "FAILED: c: boom" in captured.err

    def test_obs_journey_table(self, capsys):
        code = main(["obs", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "agent journeys (critical path, ms)" in out
        assert "dominant" in out

    def test_trace_out_chrome_format(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = main(["obs", "--quick",
                     "--trace-out", str(trace_path),
                     "--trace-format", "chrome"])
        assert code == 0
        with open(trace_path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["displayTimeUnit"] == "ms"
        spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert any(e["name"] == "request" for e in spans)


class TestAdversaryCommand:
    def test_small_campaign_passes(self, capsys):
        code = main(["adversary", "--schedules", "10", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "10/10 schedules ok" in out
        assert "0 violations" in out

    def test_single_index_reproduction(self, capsys):
        code = main(["adversary", "--seed", "0", "--index", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "schedule 3 (seed 0): ok" in out

    def test_replay_corpus_schedule(self, capsys):
        code = main([
            "adversary", "--replay",
            "tests/machines/corpus/three_way_tie_break.json",
        ])
        assert code == 0
        assert "ok — statuses" in capsys.readouterr().out

    def test_fixed_hosts_flag(self, capsys):
        code = main(["adversary", "--schedules", "3", "--hosts", "3"])
        assert code == 0
        assert "3/3 schedules ok" in capsys.readouterr().out

    def test_violation_exits_nonzero_and_prints_reproduction(
        self, capsys, monkeypatch, tmp_path
    ):
        # Break the kernel's majority check: the campaign must fail,
        # name the schedule, print its reproduction command, and save
        # the shrunk JSON for corpus promotion.
        from unittest import mock

        from repro.core.machines import AgentMachine, Schedule

        with mock.patch.object(
            AgentMachine, "vote_majority", property(lambda self: 1)
        ):
            code = main([
                "adversary", "--schedules", "60", "--seed", "0",
                "--save-failures", str(tmp_path),
            ])
        captured = capsys.readouterr()
        assert code == 1
        assert "VIOLATION [safety]" in captured.err
        assert "reproduce: PYTHONPATH=src python -m repro adversary" \
            in captured.err
        saved = sorted(tmp_path.glob("*.json"))
        assert saved
        # The saved script is directly loadable (and passes once the
        # kernel is fixed — i.e. unpatched).
        schedule = Schedule.load(str(saved[0]))
        assert main([
            "adversary", "--replay", str(saved[0]),
        ]) == 0

    def test_campaign_counters_reach_the_hub(self, tmp_path, capsys):
        from repro.obs.export import read_jsonl

        metrics_path = tmp_path / "m.jsonl"
        code = main([
            "adversary", "--schedules", "4",
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        names = {r["name"] for r in read_jsonl(str(metrics_path))}
        assert "adversary_schedules_total" in names
        assert "adversary_events_total" in names

    def test_adversary_leaves_no_global_hub(self, tmp_path):
        from repro.obs import get_hub

        main(["adversary", "--schedules", "2",
              "--metrics-out", str(tmp_path / "m.jsonl")])
        assert get_hub() is None


class TestBenchCommand:
    def test_bench_kernel_quick_writes_schema_versioned_file(
        self, tmp_path, capsys
    ):
        code = main(["bench", "--quick", "--bench-suite", "kernel",
                     "--out-dir", str(tmp_path)])
        assert code == 0
        with open(tmp_path / "BENCH_kernel.json", encoding="utf-8") as f:
            doc = json.load(f)
        assert doc["schema"] == "repro-bench/v1"
        assert doc["suite"] == "kernel"
        assert doc["scenarios"]
        assert "wrote" in capsys.readouterr().out

    def test_bench_compare_exit_codes(self, tmp_path, capsys):
        from repro.obs.bench import SCHEMA_VERSION, write_bench

        doc = {
            "schema": SCHEMA_VERSION, "suite": "kernel", "quick": True,
            "created_unix": 0.0,
            "host": {"platform": "t", "python": "3", "cpus": 1},
            "scenarios": [{
                "name": "event_loop", "unit": "events/s", "repeats": 1,
                "events": 100, "wall_s": 0.01, "rate": 10000.0,
                "fingerprint": None, "params": {},
            }],
        }
        old_dir = tmp_path / "old"
        new_dir = tmp_path / "new"
        old_dir.mkdir()
        new_dir.mkdir()
        write_bench(doc, out_dir=str(old_dir))
        slow = json.loads(json.dumps(doc))
        slow["scenarios"][0]["rate"] = 5000.0  # synthetic -50%
        write_bench(slow, out_dir=str(new_dir))

        assert main(["bench", "--compare",
                     str(old_dir), str(old_dir)]) == 0
        capsys.readouterr()
        assert main(["bench", "--compare",
                     str(old_dir), str(new_dir)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        # a looser threshold lets the same drop through
        assert main(["bench", "--compare", str(old_dir), str(new_dir),
                     "--threshold", "0.6"]) == 0

    def test_bench_compare_bad_input_exits_2(self, tmp_path, capsys):
        assert main(["bench", "--compare",
                     str(tmp_path), str(tmp_path)]) == 2
        assert "bench error" in capsys.readouterr().err

    def test_obs_leaves_no_global_hub(self):
        from repro.obs import get_hub

        main(["obs", "--quick"])
        assert get_hub() is None

    def test_unwritable_export_path_fails_fast(self):
        with pytest.raises(SystemExit, match="does not exist"):
            main(["obs", "--quick",
                  "--metrics-out", "/nonexistent-dir/m.jsonl"])

    def test_metrics_out_on_experiment_command(self, tmp_path, capsys):
        from repro.obs.export import read_jsonl

        metrics_path = tmp_path / "m.jsonl"
        trace_path = tmp_path / "t.jsonl"
        code = main([
            "fig4", "--quick", "--requests", "4",
            "--metrics-out", str(metrics_path),
            "--trace-out", str(trace_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"-> {metrics_path}" in out
        metrics = read_jsonl(str(metrics_path))
        assert len({r["name"] for r in metrics}) >= 6
        assert all(r["type"] == "metric" for r in metrics)
        trace = read_jsonl(str(trace_path))
        assert {r["type"] for r in trace} <= {"span", "event"}
        assert any(r["name"] == "experiment.run" for r in trace)
