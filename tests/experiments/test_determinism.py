"""Determinism regression: one config + seed ⇒ one result, everywhere.

``run_once`` must produce an identical *measured surface* (the
``result_fingerprint``) no matter where it executes:

* twice in the same interpreter (process-global request-id counters
  advance between runs — the fingerprint normalizes them away);
* in a ``ProcessPoolExecutor`` worker via :class:`ParallelRunner`;
* in a fresh interpreter (``python -c``), the way a cold CI shard or a
  cache written yesterday would see it.

This is the contract the result cache and the parallel engine both
stand on: a cache hit is only sound if a worker-produced result is
byte-equivalent to the serial one.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro

from repro.experiments.cache import result_fingerprint
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import RunConfig, run_once, run_repeats

CONFIG = RunConfig(
    n_replicas=5, seed=42, mean_interarrival=40.0, requests_per_client=5
)

#: Reconstructs CONFIG in a fresh interpreter and prints its fingerprint.
_FRESH_SCRIPT = """
from repro.experiments.cache import result_fingerprint
from repro.experiments.runner import RunConfig, run_once

config = RunConfig(
    n_replicas=5, seed=42, mean_interarrival=40.0, requests_per_client=5
)
print(result_fingerprint(run_once(config)))
"""


def test_same_interpreter_rerun_identical():
    first = result_fingerprint(run_once(CONFIG))
    second = result_fingerprint(run_once(CONFIG))
    assert first == second


def test_pool_worker_matches_serial():
    serial = result_fingerprint(run_once(CONFIG))
    with ParallelRunner(jobs=2) as runner:
        pooled = runner.run_one(CONFIG)
    assert result_fingerprint(pooled) == serial
    # workers ship results back pickled, without the live deployment
    assert pooled.deployment is None


def test_fresh_interpreter_matches_serial():
    serial = result_fingerprint(run_once(CONFIG))
    src = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", _FRESH_SCRIPT],
        capture_output=True, text=True, check=True, env=env,
    )
    assert proc.stdout.strip() == serial


def test_run_order_does_not_matter():
    """Sharding contract: results line up with configs by index."""
    configs = [CONFIG.with_(seed=s) for s in (1, 2, 3, 4)]
    serial = [result_fingerprint(run_once(c)) for c in configs]
    with ParallelRunner(jobs=2) as runner:
        pooled = [result_fingerprint(r) for r in runner.run_many(configs)]
        reversed_back = [
            result_fingerprint(r)
            for r in reversed(runner.run_many(list(reversed(configs))))
        ]
    assert pooled == serial
    assert reversed_back == serial


def test_run_repeats_serial_vs_parallel():
    serial = run_repeats(CONFIG, repeats=3)
    with ParallelRunner(jobs=2) as runner:
        pooled = run_repeats(CONFIG, repeats=3, runner=runner)
    assert [result_fingerprint(r) for r in serial] == [
        result_fingerprint(r) for r in pooled
    ]


def test_fingerprint_distinguishes_seeds():
    """Sanity: the fingerprint is not insensitive to actual behaviour."""
    a = result_fingerprint(run_once(CONFIG))
    b = result_fingerprint(run_once(CONFIG.with_(seed=43)))
    assert a != b


@pytest.mark.parametrize("protocol", ["marp", "primary-copy"])
def test_protocols_deterministic_through_engine(engine_runner, protocol):
    config = CONFIG.with_(protocol=protocol)
    assert result_fingerprint(engine_runner.run_one(config)) == (
        result_fingerprint(run_once(config))
    )
