"""Tests for the experiment harness (small, fast configurations)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.ablations import theorem3_bounds
from repro.experiments.common import latency_sweep
from repro.experiments.fig2_alt import project_fig2
from repro.experiments.fig3_att import project_fig3
from repro.experiments.fig4_prk import run_fig4
from repro.experiments.runner import RunConfig, build_protocol, run_once, run_repeats
from repro.experiments.sweeps import sweep
from repro.experiments.table_comparison import run_comparison
from repro.replication.deployment import Deployment

FAST = dict(requests_per_client=5, mean_interarrival=60.0)


class TestRunner:
    def test_run_once_marp(self):
        result = run_once(RunConfig(n_replicas=3, seed=0, **FAST))
        assert result.protocol_name == "marp"
        assert result.committed == 15
        assert result.failed == 0
        assert result.alt > 0
        assert result.att >= result.alt
        assert result.audit.consistent
        assert result.agent_migrations > 0

    def test_run_once_baseline(self):
        result = run_once(
            RunConfig(protocol="mcv", n_replicas=3, seed=0, **FAST)
        )
        assert result.protocol_name == "mcv"
        assert result.committed == 15
        assert result.agent_migrations == 0

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ExperimentError):
            run_once(RunConfig(protocol="carrier-pigeon", **FAST))

    def test_unknown_latency_rejected(self):
        with pytest.raises(ExperimentError):
            run_once(RunConfig(latency="quantum", **FAST))

    def test_unknown_topology_rejected(self):
        with pytest.raises(ExperimentError):
            run_once(RunConfig(topology="donut", **FAST))

    def test_random_costs_topology(self):
        result = run_once(
            RunConfig(n_replicas=3, topology="random-costs", seed=1, **FAST)
        )
        assert result.committed == 15

    def test_wan_slower_than_lan(self):
        lan = run_once(RunConfig(n_replicas=3, seed=0, **FAST))
        wan = run_once(
            RunConfig(n_replicas=3, seed=0, latency="wan", **FAST)
        )
        assert wan.att > 2 * lan.att

    def test_with_copies(self):
        config = RunConfig(seed=1)
        changed = config.with_(seed=9, n_replicas=4)
        assert changed.seed == 9
        assert changed.n_replicas == 4
        assert config.seed == 1  # original untouched

    def test_run_repeats_distinct_seeds(self):
        results = run_repeats(RunConfig(n_replicas=3, **FAST), repeats=2)
        assert len(results) == 2
        assert results[0].config.seed != results[1].config.seed

    def test_run_repeats_validation(self):
        with pytest.raises(ExperimentError):
            run_repeats(RunConfig(), repeats=0)

    def test_build_protocol_passes_kwargs(self):
        dep = Deployment(n_replicas=3)
        protocol = build_protocol(
            dep,
            RunConfig(protocol="primary-copy",
                      protocol_kwargs={"primary": "s2"}),
        )
        assert protocol.primary == "s2"


class TestSweeps:
    def test_sweep_runs_each_value(self):
        base = RunConfig(n_replicas=3, requests_per_client=4)
        points = sweep(base, "mean_interarrival", [40.0, 120.0], repeats=1)
        assert [p.x for p in points] == [40.0, 120.0]
        assert all(len(p.results) == 1 for p in points)

    def test_point_metric_aggregation(self):
        base = RunConfig(n_replicas=3, requests_per_client=4)
        points = sweep(base, "mean_interarrival", [80.0], repeats=2)
        summary = points[0].metric(lambda r: float(r.committed))
        assert summary.n == 2
        assert summary.mean == 12.0

    def test_all_consistent(self):
        base = RunConfig(n_replicas=3, requests_per_client=4)
        points = sweep(base, "mean_interarrival", [80.0], repeats=1)
        assert points[0].all_consistent()


class TestFigures:
    @pytest.fixture(scope="class")
    def small_sweep(self):
        return latency_sweep(
            server_counts=(3,),
            interarrivals=(30.0, 120.0),
            requests_per_client=6,
            repeats=1,
        )

    def test_fig2_shape(self, small_sweep):
        figure = project_fig2(small_sweep)
        series = figure.series["3 servers"]
        assert len(series) == 2
        assert series[0] > series[1]  # contention raises ALT
        assert figure.all_consistent
        assert "Figure 2" in figure.text

    def test_fig3_dominates_fig2(self, small_sweep):
        alt_series = project_fig2(small_sweep).series["3 servers"]
        att_series = project_fig3(small_sweep).series["3 servers"]
        assert all(a <= t for a, t in zip(alt_series, att_series))

    def test_fig4_mass_shifts_with_rate(self):
        figure = run_fig4(
            interarrivals=(15.0, 150.0), requests_per_client=8, repeats=1,
        )
        k3, k5 = figure.series["K=3"], figure.series["K=5"]
        assert k5[0] > k5[1]  # high rate -> more full tours
        assert k3[1] > k3[0]  # low rate -> more minimum tours
        for idx in range(2):
            total = sum(figure.series[f"K={k}"][idx] for k in (3, 4, 5))
            assert total == pytest.approx(100.0)


class TestComparisonAndTheorems:
    def test_comparison_rows(self):
        table = run_comparison(
            protocols=("marp", "primary-copy"),
            mean_interarrival=80.0,
            requests_per_client=4,
            repeats=1,
        )
        assert len(table.rows) == 2
        marp_row = table.row_for("marp")
        assert marp_row.agent_migrations > 0
        pc_row = table.row_for("primary-copy")
        assert pc_row.agent_migrations == 0
        assert "protocol" in table.text

    def test_row_for_missing_raises(self):
        table = run_comparison(
            protocols=("marp",), requests_per_client=3, repeats=1,
        )
        with pytest.raises(KeyError):
            table.row_for("mcv")

    def test_theorem3_bounds_hold(self):
        report = theorem3_bounds(
            n_replicas=3, requests_per_client=6, repeats=1,
            mean_interarrival=40.0,
        )
        assert report.holds
        assert report.lower_bound == 2
        assert report.upper_bound == 3
        assert "HOLDS" in report.text
