"""Engine behaviour: sharding, seed derivation, defaults, CLI flags.

Byte-equivalence of serial/pool/cached execution lives in
``test_determinism.py`` and ``test_cache.py``; this module covers the
engine's own contracts — index sharding with partial cache hits, the
stream-splitting repeat-seed derivation that replaced the colliding
``seed + i`` scheme, the process-wide default runner, the engine's
telemetry, and the CLI flags that configure all of it.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments.cache import ResultCache, result_fingerprint
from repro.experiments.parallel import (
    ParallelRunner,
    get_default_runner,
    set_default_runner,
)
from repro.experiments.runner import (
    RunConfig,
    repeat_configs,
    repeat_seeds,
    run_once,
    run_repeats,
)
from repro.experiments.sweeps import sweep
from repro.obs.hub import ObservabilityHub, set_hub
from repro.sim.rng import spawn_seed

QUICK = RunConfig(
    n_replicas=3, seed=0, mean_interarrival=80.0, requests_per_client=3
)


class TestRunnerBasics:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ExperimentError, match="jobs"):
            ParallelRunner(jobs=0)

    @pytest.mark.parametrize(
        ("jobs", "parallel"), [(None, False), (1, False), (2, True)]
    )
    def test_parallel_property(self, jobs, parallel):
        assert ParallelRunner(jobs=jobs).parallel is parallel

    def test_serial_runner_keeps_live_deployment(self):
        result = ParallelRunner().run_one(QUICK)
        assert result.deployment is not None

    def test_partial_cache_hits_preserve_sharding(self, tmp_path):
        """Cached and fresh results interleave back into config order."""
        configs = [QUICK.with_(seed=s) for s in (1, 2, 3, 4)]
        expected = [result_fingerprint(run_once(c)) for c in configs]
        cache = ResultCache(tmp_path)
        # prime only the middle two
        for config in configs[1:3]:
            cache.put(config, run_once(config))
        with ParallelRunner(jobs=2, cache=cache) as runner:
            got = [result_fingerprint(r) for r in runner.run_many(configs)]
        assert got == expected
        assert (cache.hits, cache.misses) == (2, 2)

    def test_close_is_idempotent(self):
        runner = ParallelRunner(jobs=2)
        runner.run_one(QUICK)
        runner.close()
        runner.close()
        # a closed runner lazily rebuilds its pool on next use
        assert result_fingerprint(runner.run_one(QUICK)) == (
            result_fingerprint(run_once(QUICK))
        )
        runner.close()


class TestRepeatSeedDerivation:
    """Regression for the old ``seed + i`` child-seed scheme.

    Under ``seed + i``, repeats of base seed ``s`` were
    ``s, s+1, ..., s+r-1`` — adjacent sweep points shared almost all
    their child seeds, silently correlating supposedly independent
    repeats. Stream splitting derives children that never collide
    across adjacent bases.
    """

    def test_adjacent_base_seeds_share_no_child_seeds(self):
        for base in (0, 1, 7, 99, 12345):
            a = set(repeat_seeds(base, 10))
            b = set(repeat_seeds(base + 1, 10))
            assert not a & b, f"bases {base}/{base + 1} collide"

    def test_children_distinct_within_base(self):
        seeds = repeat_seeds(0, 50)
        assert len(set(seeds)) == 50

    def test_derivation_is_stable(self):
        assert repeat_seeds(0, 3) == repeat_seeds(0, 3)
        assert repeat_seeds(0, 3) == [
            spawn_seed(0, "experiment.repeat", i) for i in range(3)
        ]

    def test_repeat_configs_only_change_seed(self):
        children = repeat_configs(QUICK, 3)
        assert [c.with_(seed=QUICK.seed) for c in children] == [QUICK] * 3
        assert [c.seed for c in children] == repeat_seeds(QUICK.seed, 3)

    def test_run_repeats_uses_derived_seeds(self):
        results = run_repeats(QUICK, repeats=3)
        assert [r.config.seed for r in results] == repeat_seeds(QUICK.seed, 3)

    def test_run_repeats_rejects_bad_count(self):
        with pytest.raises(ExperimentError):
            run_repeats(QUICK, repeats=0)


class TestDefaultRunner:
    def test_default_is_serial_uncached(self):
        runner = get_default_runner()
        assert runner.parallel is False
        assert runner.cache is None
        assert get_default_runner() is runner

    def test_set_default_returns_previous(self):
        original = get_default_runner()
        replacement = ParallelRunner()
        try:
            assert set_default_runner(replacement) is original
            assert get_default_runner() is replacement
        finally:
            set_default_runner(original)

    def test_run_repeats_routes_through_installed_default(self, tmp_path):
        cache = ResultCache(tmp_path)
        original = set_default_runner(ParallelRunner(cache=cache))
        try:
            run_repeats(QUICK, repeats=2)
        finally:
            set_default_runner(original)
        assert cache.misses == 2
        assert len(cache) == 2


class TestEngineTelemetry:
    def _run_under_hub(self, runner):
        from repro.obs.hub import get_hub

        hub = ObservabilityHub()
        previous = get_hub()
        set_hub(hub)
        try:
            with runner:
                runner.run_one(QUICK)
        finally:
            set_hub(previous)
        return hub

    @pytest.mark.parametrize("jobs,mode", [(1, "serial"), (2, "pool")])
    def test_runs_counter_and_wall_histogram(self, jobs, mode):
        hub = self._run_under_hub(ParallelRunner(jobs=jobs))
        counter = hub.registry.get("experiment_engine_runs_total")
        assert counter is not None and counter.value(mode=mode) == 1
        histogram = hub.registry.get("experiment_run_wall_ms")
        assert histogram is not None and histogram.count() == 1

    def test_cache_lookup_counters(self, tmp_path):
        hub = self._run_under_hub(
            ParallelRunner(cache=ResultCache(tmp_path))
        )
        counter = hub.registry.get("experiment_cache_lookups_total")
        assert counter is not None and counter.value(outcome="miss") == 1


class TestSweepThroughEngine:
    def test_sweep_accepts_runner(self, tmp_path):
        serial = sweep(QUICK, "n_replicas", [3, 5], repeats=2)
        with ParallelRunner(jobs=2, cache=ResultCache(tmp_path)) as runner:
            pooled = sweep(
                QUICK, "n_replicas", [3, 5], repeats=2, runner=runner
            )
        assert [p.x for p in pooled] == [p.x for p in serial]
        for a, b in zip(serial, pooled):
            assert [result_fingerprint(r) for r in a.results] == [
                result_fingerprint(r) for r in b.results
            ]


class TestCLIFlags:
    def test_parser_accepts_engine_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["fig4", "--quick", "-j", "2", "--cache-dir", "/tmp/c",
             "--no-cache"]
        )
        assert args.jobs == 2
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache is True

    def test_build_runner_default_is_none(self, monkeypatch):
        from repro.cli import _build_runner, build_parser

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        args = build_parser().parse_args(["fig4", "--quick"])
        assert _build_runner(args) is None

    def test_build_runner_rejects_bad_jobs(self):
        from repro.cli import _build_runner, build_parser

        args = build_parser().parse_args(["fig4", "--quick", "-j", "0"])
        with pytest.raises(SystemExit):
            _build_runner(args)

    def test_build_runner_cache_opt_in(self, tmp_path, monkeypatch):
        from repro.cli import _build_runner, build_parser

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        args = build_parser().parse_args(
            ["fig4", "--quick", "--cache-dir", str(tmp_path)]
        )
        runner = _build_runner(args)
        assert runner is not None and runner.cache is not None
        assert runner.cache.root == tmp_path
        runner.close()

    def test_build_runner_env_cache_and_no_cache(self, tmp_path, monkeypatch):
        from repro.cli import _build_runner, build_parser

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        args = build_parser().parse_args(["fig4", "--quick"])
        runner = _build_runner(args)
        assert runner is not None and runner.cache is not None
        runner.close()
        args = build_parser().parse_args(["fig4", "--quick", "--no-cache"])
        assert _build_runner(args) is None

    def test_cli_jobs_output_matches_serial(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["fig4", "--quick"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["fig4", "--quick", "-j", "2"]) == 0
        assert capsys.readouterr().out == serial_out
        assert (
            main(["fig4", "--quick", "--cache-dir", str(tmp_path)]) == 0
        )
        assert capsys.readouterr().out == serial_out
        # warm: served entirely from cache, same bytes
        assert (
            main(["fig4", "--quick", "--cache-dir", str(tmp_path)]) == 0
        )
        assert capsys.readouterr().out == serial_out
        assert len(ResultCache(tmp_path)) > 0
