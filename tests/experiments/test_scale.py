"""The scale saturation family: variants, curves, bends, payloads.

The family sweeps offered load per (protocol, variant) pair through the
parallel runner with the streaming + vectorized data plane. These tests
pin the pure shape logic (variant matrix, saturation-knee detection,
JSON artifact schema) without simulation, then run one real miniature
sweep end-to-end: determinism, cache interaction, consistency and the
``repro scale`` artifact path.
"""

import json

import pytest

from repro.experiments.parallel import ParallelRunner
from repro.experiments.scale import (
    ScaleCurve,
    ScaleFamily,
    ScalePoint,
    ScaleVariant,
    default_variants,
    geo_variants,
    replica_sweep_variants,
    run_scale,
    scale_config,
)


def _point(gap, offered, throughput, consistent=True):
    return ScalePoint(
        mean_interarrival=gap, offered_load=offered, committed=100.0,
        throughput=throughput, att=50.0, att_p50=40.0, att_p99=90.0,
        consistent=consistent,
    )


class TestVariants:
    def test_default_matrix_is_one_axis_at_a_time(self):
        variants = default_variants()
        labels = [v.label for v in variants]
        assert labels[0] == "base"
        assert len(labels) == len(set(labels))
        base = variants[0]
        for variant in variants[1:]:
            # exactly one knob differs from base per variant
            diffs = sum([
                variant.n_replicas != base.n_replicas,
                variant.n_keys != base.n_keys,
                variant.key_skew != base.key_skew,
                variant.latency != base.latency,
            ])
            assert diffs == 1, f"{variant.label} changes {diffs} knobs"

    def test_axis_values_equal_to_base_are_skipped(self):
        base = ScaleVariant(label="base", n_replicas=5, n_keys=16)
        variants = default_variants(
            replica_counts=(5,), key_counts=(16,), skews=(base.key_skew,),
            wan=False, base=base,
        )
        assert variants == [base]

    def test_payload_round_trips_through_json(self):
        variant = ScaleVariant(label="wan", latency="wan")
        assert json.loads(json.dumps(variant.payload()))["latency"] == "wan"

    def test_replica_sweep_covers_hundreds_with_delta_plane(self):
        variants = replica_sweep_variants()
        assert [v.n_replicas for v in variants] == [100, 150, 200, 300]
        assert all(v.delta_views for v in variants)
        full = replica_sweep_variants(counts=(200,), delta_views=False)
        assert full[0].label == "N=200/full" and not full[0].delta_views

    def test_geo_matrix_spans_lan_wan_hybrid(self):
        variants = geo_variants()
        assert [v.latency for v in variants] == ["lan", "wan", "hybrid"]
        assert len({v.label for v in variants}) == 3

    def test_variant_delta_flag_reaches_the_run_config(self):
        variant = ScaleVariant(label="d", delta_views=True)
        assert scale_config("marp", variant, 50.0, 100).delta_views
        assert not scale_config(
            "marp", ScaleVariant(label="f"), 50.0, 100
        ).delta_views


class TestScaleConfig:
    def test_canonical_config_is_streaming_and_vectorized(self):
        config = scale_config("marp", ScaleVariant(label="x"), 50.0, 100)
        assert config.streaming
        assert config.workload_chunk is not None
        assert config.ul_retention is not None and config.inbox_ttl is not None
        # hygiene windows respect the grant_ttl safety bound (10 s)
        assert config.ul_retention > 10_000.0
        assert config.inbox_ttl > 10_000.0

    def test_horizon_scales_with_workload(self):
        small = scale_config("marp", ScaleVariant(label="x"), 50.0, 100)
        bulk = scale_config("marp", ScaleVariant(label="x"), 100.0, 200_000)
        assert small.horizon == 5_000_000.0  # floored at the default
        assert bulk.horizon >= 20.0 * 100.0 * 200_000


class TestSaturation:
    def test_knee_is_first_subefficient_point(self):
        curve = ScaleCurve("marp", ScaleVariant(label="base"), points=[
            _point(100.0, 50.0, 49.0),   # 98% — fine
            _point(50.0, 100.0, 93.0),   # 93% — fine
            _point(25.0, 200.0, 150.0),  # 75% — the knee
            _point(10.0, 500.0, 160.0),
        ])
        assert curve.saturation_load() == 200.0
        assert curve.saturation_load(efficiency=0.5) == 500.0
        assert curve.saturation_load(efficiency=0.99) == 50.0  # 98% < 99%

    def test_unsaturated_sweep_has_no_knee(self):
        curve = ScaleCurve("marp", ScaleVariant(label="base"), points=[
            _point(100.0, 50.0, 49.5), _point(50.0, 100.0, 99.0),
        ])
        assert curve.saturation_load() is None

    def test_family_bends_group_by_variant_then_protocol(self):
        family = ScaleFamily(title="t", curves=[
            ScaleCurve("marp", ScaleVariant(label="base"),
                       points=[_point(25.0, 200.0, 100.0)]),
            ScaleCurve("mcv", ScaleVariant(label="base"),
                       points=[_point(25.0, 200.0, 199.0)]),
        ])
        bends = family.bends()
        assert bends == {"base": {"marp": 200.0, "mcv": None}}

    def test_curve_accessor_and_miss(self):
        family = ScaleFamily(title="t", curves=[
            ScaleCurve("marp", ScaleVariant(label="base")),
        ])
        assert family.curve("marp", "base").protocol == "marp"
        with pytest.raises(KeyError):
            family.curve("mcv", "base")

    def test_payload_schema_and_json_round_trip(self):
        family = ScaleFamily(title="t", curves=[
            ScaleCurve("marp", ScaleVariant(label="base"),
                       points=[_point(25.0, 200.0, 100.0)]),
        ])
        doc = json.loads(json.dumps(family.payload()))
        assert doc["schema"] == "repro-scale/v1"
        assert doc["bends"]["base"]["marp"] == 200.0
        (curve,) = doc["curves"]
        assert curve["saturation_load"] == 200.0
        assert curve["points"][0]["offered_load"] == 200.0


MINI_VARIANTS = [ScaleVariant(label="mini", n_replicas=3, n_keys=8,
                              key_skew=0.9)]
MINI_KW = dict(
    protocols=("marp", "primary-copy"),
    interarrivals=(80.0, 30.0),
    variants=MINI_VARIANTS,
    requests_per_client=6,
    seed=7,
    workload_chunk=16,
)


class TestMiniatureSweep:
    @pytest.fixture(scope="class")
    def family(self):
        return run_scale(**MINI_KW)

    def test_one_curve_per_protocol_variant_pair(self, family):
        assert {(c.protocol, c.variant.label) for c in family.curves} == {
            ("marp", "mini"), ("primary-copy", "mini"),
        }
        for curve in family.curves:
            assert [p.mean_interarrival for p in curve.points] == [80.0, 30.0]

    def test_points_are_consistent_and_populated(self, family):
        for curve in family.curves:
            for point in curve.points:
                assert point.consistent
                assert point.committed > 0
                assert point.throughput > 0
                assert point.att_p50 <= point.att_p99
                # one client per replica at rate 1000/gap req/s
                assert point.offered_load == pytest.approx(
                    3 * 1000.0 / point.mean_interarrival
                )

    def test_text_table_mentions_every_protocol(self, family):
        assert "marp" in family.text and "primary-copy" in family.text
        assert "offered/s" in family.text

    def test_deterministic_rerun(self, family):
        again = run_scale(**MINI_KW)
        assert json.dumps(again.payload(), sort_keys=True) == json.dumps(
            family.payload(), sort_keys=True
        )

    def test_sweep_is_served_from_cache_on_rerun(self, tmp_path, family):
        from repro.experiments.cache import ResultCache

        cache = ResultCache(tmp_path)
        with ParallelRunner(cache=cache) as runner:
            cold = run_scale(runner=runner, **MINI_KW)
        assert cache.misses > 0 and cache.hits == 0
        with ParallelRunner(cache=cache) as runner:
            warm = run_scale(runner=runner, **MINI_KW)
        assert cache.hits == cache.misses  # every cell re-served
        assert json.dumps(warm.payload(), sort_keys=True) == json.dumps(
            cold.payload(), sort_keys=True
        )
        assert json.dumps(cold.payload(), sort_keys=True) == json.dumps(
            family.payload(), sort_keys=True
        )
