"""Tests for the scalability (S1) and availability (F1) experiments."""

import pytest

from repro.experiments.availability import run_availability
from repro.experiments.scalability import run_scalability


class TestScalability:
    @pytest.fixture(scope="class")
    def table(self):
        return run_scalability(
            protocols=("marp",), replica_counts=(3, 5),
            requests_per_client=4, repeats=1,
        )

    def test_rows_per_protocol_and_n(self, table):
        assert len(table.rows) == 2
        assert {row[1] for row in table.rows} == {3, 5}

    def test_everything_commits_consistently(self, table):
        for row in table.rows:
            assert row[2] == 4.0 * row[1]  # committed = clients * requests
            assert row[-1] is True

    def test_cost_grows_with_n(self, table):
        att = table.series("marp", "ATT(ms)")
        assert att[5] > att[3]

    def test_series_accessor(self, table):
        msgs = table.series("marp", "msgs/commit")
        assert set(msgs) == {3, 5}

    def test_text_renders(self, table):
        assert "S1" in table.text


class TestAvailability:
    @pytest.fixture(scope="class")
    def table(self):
        return run_availability(
            protocols=("marp",), crash_counts=(0, 2),
            requests_per_client=3, repeats=1, horizon=200_000.0,
        )

    def test_full_availability_without_crashes(self, table):
        assert table.availability("marp")[0] == 100.0

    def test_graceful_degradation_with_minority_down(self, table):
        # 2 of 5 homes are dead: only their clients are denied.
        assert table.availability("marp")[2] == pytest.approx(60.0)

    def test_survivors_stay_consistent(self, table):
        for row in table.rows:
            assert row[-1] is True

    def test_text_renders(self, table):
        assert "F1" in table.text
