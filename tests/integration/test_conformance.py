"""Cross-backend conformance: identical per-key commit chains.

Both execution backends — the discrete-event simulator and the live
thread runtime — now drive the same sans-IO kernel machines, so they are
required to produce *identical* per-key commit chains for the same
seeded scenario, faults included. Divergence between backends is a test
failure here, not a latent bug.

Scenario design: writes are submitted causally (each one only after the
previous committed), so the chain each key must show is fully determined
by the workload — version ``i`` belongs to the ``i``-th write of that
key on *any* correct backend, regardless of scheduling, latency jitter,
or when exactly a fault lands. Chains are normalized to
``{key: [(version, submission_index), ...]}`` and hashed with the same
canonical-JSON + sha256 recipe as ``repro.experiments.cache
.result_fingerprint``.

This file is the ``runtime-parity`` CI job's workload.
"""

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import pytest

from repro.core.protocol import MARP
from repro.net.faults import CrashSchedule, FaultPlan
from repro.replication.deployment import Deployment
from repro.runtime import LiveCluster

FOREVER = 1e15


@dataclass(frozen=True)
class Scenario:
    """One seeded workload, expressed in backend-neutral host indices."""

    name: str
    n: int
    seed: int
    #: (home_index, key) per write, submitted strictly in order.
    writes: Tuple[Tuple[int, str], ...]
    #: host indices down for the whole run (a majority must stay up).
    down_from_start: Tuple[int, ...] = ()
    #: (after_write_number, host_index): crash mid-run, once that many
    #: writes have committed.
    midrun_crash: Tuple[int, int] = ()


def _rr(indices, keys, count):
    """Round-robin (home_index, key) pairs."""
    return tuple(
        (indices[i % len(indices)], keys[i % len(keys)])
        for i in range(count)
    )


SCENARIOS = [
    Scenario(
        name="n3_baseline",
        n=3,
        seed=101,
        writes=_rr([1, 2, 3], ["x", "y", "z"], 9),
    ),
    Scenario(
        name="n3_one_replica_down",
        n=3,
        seed=202,
        writes=_rr([1, 2], ["x", "y"], 8),
        down_from_start=(3,),
    ),
    Scenario(
        name="n5_two_replicas_down",
        n=5,
        seed=303,
        writes=_rr([1, 2, 3], ["x", "y", "z"], 9),
        down_from_start=(4, 5),
    ),
    Scenario(
        name="n5_midrun_crash",
        n=5,
        seed=404,
        writes=_rr([1, 2, 3, 4], ["x", "y"], 10),
        midrun_crash=(4, 5),
    ),
]


def expected_chains(scenario: Scenario) -> Dict[str, List[Tuple[int, int]]]:
    """What any correct backend must commit: per-key versions 1..m, each
    owned by that key's i-th submitted write."""
    chains: Dict[str, List[Tuple[int, int]]] = {}
    for index, (_home, key) in enumerate(scenario.writes, start=1):
        chain = chains.setdefault(key, [])
        chain.append((len(chain) + 1, index))
    return chains


def chain_fingerprint(chains: Dict[str, List[Tuple[int, int]]]) -> str:
    text = json.dumps(
        {k: [list(pair) for pair in v] for k, v in sorted(chains.items())},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def crashed_indices(scenario: Scenario) -> set:
    down = set(scenario.down_from_start)
    if scenario.midrun_crash:
        down.add(scenario.midrun_crash[1])
    return down


# -- DES backend -------------------------------------------------------------


def run_des(scenario: Scenario) -> Dict[str, List[Tuple[int, int]]]:
    faults = FaultPlan.none()
    for index in scenario.down_from_start:
        faults.crashes.add(f"s{index}", 0.0, FOREVER)
    dep = Deployment(n_replicas=scenario.n, seed=scenario.seed, faults=faults)
    marp = MARP(dep)
    rid_to_index: Dict[int, int] = {}
    for number, (home_index, key) in enumerate(scenario.writes, start=1):
        record = marp.submit_write(
            f"s{home_index}", key, f"{scenario.name}-{number}"
        )
        rid_to_index[record.request_id] = number
        deadline = dep.env.now + 2_000_000
        while record.status != "committed":
            assert dep.env.now < deadline, (
                f"{scenario.name}: DES write {number} did not commit"
            )
            dep.run(until=dep.env.now + 200)
        if scenario.midrun_crash and number == scenario.midrun_crash[0]:
            dep.faults.crashes.add(
                f"s{scenario.midrun_crash[1]}", dep.env.now + 0.001, FOREVER
            )
    dep.run(until=dep.env.now + 10_000)  # let trailing COMMITs settle

    observers = [
        f"s{i}" for i in range(1, scenario.n + 1)
        if i not in crashed_indices(scenario)
    ]
    merged: Dict[str, Dict[int, int]] = {}
    for host in observers:
        for commit in dep.server(host).history:
            merged.setdefault(commit.key, {})[commit.version] = (
                rid_to_index[commit.request_id]
            )
    return {key: sorted(v.items()) for key, v in merged.items()}


# -- live thread backend -----------------------------------------------------


def run_live(scenario: Scenario) -> Dict[str, List[Tuple[int, int]]]:
    import time

    with LiveCluster(n_replicas=scenario.n, backend="thread",
                     seed=scenario.seed) as cluster:
        for index in scenario.down_from_start:
            cluster.transport.isolate(f"h{index}")
        rid_to_index: Dict[int, int] = {}
        for number, (home_index, key) in enumerate(scenario.writes, start=1):
            rid = cluster.submit_write(
                f"h{home_index}", key, f"{scenario.name}-{number}"
            )
            rid_to_index[rid] = number
            records = cluster.wait_for(number, timeout=30.0)
            assert records[-1]["status"] == "committed", (
                f"{scenario.name}: live write {number} failed"
            )
            if scenario.midrun_crash and number == scenario.midrun_crash[0]:
                cluster.transport.isolate(f"h{scenario.midrun_crash[1]}")
        time.sleep(0.3)  # let trailing COMMIT broadcasts land
        finals = cluster.shutdown()

    observers = [
        f"h{i}" for i in range(1, scenario.n + 1)
        if i not in crashed_indices(scenario)
    ]
    merged: Dict[str, Dict[int, int]] = {}
    for host in observers:
        for request_id, key, version in finals[host]["history"]:
            merged.setdefault(key, {})[version] = rid_to_index[request_id]
    return {key: sorted(v.items()) for key, v in merged.items()}


# -- the conformance contract ------------------------------------------------


@pytest.mark.parametrize(
    "scenario", SCENARIOS, ids=[s.name for s in SCENARIOS]
)
class TestCommitChainConformance:
    def test_backends_produce_identical_chains(self, scenario):
        expected = expected_chains(scenario)
        des_chains = run_des(scenario)
        live_chains = run_live(scenario)
        assert des_chains == expected
        assert live_chains == expected
        assert chain_fingerprint(des_chains) == chain_fingerprint(live_chains)
