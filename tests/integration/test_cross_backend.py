"""Cross-backend equivalence: the DES and live runtimes run the same
protocol logic and must exhibit the same qualitative behaviour."""

from repro.analysis.consistency import audit
from repro.core.protocol import MARP
from repro.replication.deployment import Deployment
from repro.runtime import LiveCluster


def run_des(n_replicas: int, n_writes: int, seed: int):
    dep = Deployment(n_replicas=n_replicas, seed=seed)
    marp = MARP(dep)
    records = [
        marp.submit_write(dep.hosts[index % n_replicas], "x", index)
        for index in range(n_writes)
    ]
    dep.run(until=2_000_000)
    report = audit(dep)
    return records, report


def run_live(n_replicas: int, n_writes: int, seed: int):
    with LiveCluster(n_replicas=n_replicas, backend="thread",
                     seed=seed) as cluster:
        for index in range(n_writes):
            cluster.submit_write(
                cluster.hosts[index % n_replicas], "x", index
            )
        records = cluster.wait_for(n_writes, timeout=60)
    return records, cluster.audit()


class TestCrossBackend:
    def test_both_backends_commit_everything(self):
        des_records, des_report = run_des(3, 9, seed=50)
        live_records, live_report = run_live(3, 9, seed=50)

        assert all(r.status == "committed" for r in des_records)
        assert all(r["status"] == "committed" for r in live_records)
        assert des_report.consistent
        assert live_report.consistent
        assert des_report.total_commits == live_report.total_commits == 9

    def test_visit_bounds_hold_on_both_backends(self):
        n = 3
        majority = n // 2 + 1
        des_records, _ = run_des(n, 6, seed=51)
        live_records, _ = run_live(n, 6, seed=51)

        for record in des_records:
            assert majority <= record.visits_to_lock <= n
        for record in live_records:
            assert record["visits_to_lock"] >= majority

    def test_final_version_matches_commit_count(self):
        # Both backends serialise all writes to one key: the final
        # version equals the number of commits.
        dep = Deployment(n_replicas=3, seed=52)
        marp = MARP(dep)
        for index in range(5):
            marp.submit_write(dep.hosts[index % 3], "x", index)
        dep.run(until=1_000_000)
        assert dep.server("s1").store.version_of("x") == 5

        with LiveCluster(n_replicas=3, backend="thread", seed=52) as c:
            for index in range(5):
                c.submit_write(c.hosts[index % 3], "x", index)
            c.wait_for(5, timeout=60)
        finals = c.shutdown() or c._finals
        versions = {final["store"]["x"][1] for final in finals.values()}
        assert versions == {5}
