"""Full-view vs delta-view conformance: identical per-key commit chains.

The delta-view data plane (``delta_views=True``) changes *how* lock
state travels — ``SharedViewDelta`` patches instead of full snapshots,
compact suitcase encodings instead of repeated ``AgentId`` tuples — and
therefore changes wire sizes and event timing. It must never change
*what* commits: the scenarios here submit writes causally, so the chain
each key must show is fully determined by the workload, and both planes
are required to produce the same sha256 chain fingerprint on the DES
*and* the live thread backend — faults, recovery fallback and all.

Reuses the backend-neutral scenarios of
:mod:`tests.integration.test_conformance`.
"""

import time
from typing import Dict, List, Tuple

import pytest

from repro.core.config import MARPConfig
from repro.core.protocol import MARP
from repro.net.faults import FaultPlan
from repro.replication.deployment import Deployment
from repro.replication.server import ReplicaConfig
from repro.runtime import LiveCluster
from repro.runtime.host import LiveConfig

from tests.integration.test_conformance import (
    FOREVER,
    SCENARIOS,
    Scenario,
    chain_fingerprint,
    crashed_indices,
    expected_chains,
)


def run_des_delta(scenario: Scenario) -> Dict[str, List[Tuple[int, int]]]:
    """The DES conformance run with the delta plane switched on."""
    faults = FaultPlan.none()
    for index in scenario.down_from_start:
        faults.crashes.add(f"s{index}", 0.0, FOREVER)
    dep = Deployment(
        n_replicas=scenario.n,
        seed=scenario.seed,
        faults=faults,
        replica_config=ReplicaConfig(delta_views=True),
    )
    marp = MARP(dep, config=MARPConfig(delta_views=True))
    rid_to_index: Dict[int, int] = {}
    for number, (home_index, key) in enumerate(scenario.writes, start=1):
        record = marp.submit_write(
            f"s{home_index}", key, f"{scenario.name}-{number}"
        )
        rid_to_index[record.request_id] = number
        deadline = dep.env.now + 2_000_000
        while record.status != "committed":
            assert dep.env.now < deadline, (
                f"{scenario.name}: delta DES write {number} did not commit"
            )
            dep.run(until=dep.env.now + 200)
        if scenario.midrun_crash and number == scenario.midrun_crash[0]:
            dep.faults.crashes.add(
                f"s{scenario.midrun_crash[1]}", dep.env.now + 0.001, FOREVER
            )
    dep.run(until=dep.env.now + 10_000)

    observers = [
        f"s{i}" for i in range(1, scenario.n + 1)
        if i not in crashed_indices(scenario)
    ]
    merged: Dict[str, Dict[int, int]] = {}
    for host in observers:
        for commit in dep.server(host).history:
            merged.setdefault(commit.key, {})[commit.version] = (
                rid_to_index[commit.request_id]
            )
    return {key: sorted(v.items()) for key, v in merged.items()}


def run_live_delta(scenario: Scenario) -> Dict[str, List[Tuple[int, int]]]:
    """The live-thread conformance run with the delta plane switched on."""
    with LiveCluster(
        n_replicas=scenario.n, backend="thread", seed=scenario.seed,
        config=LiveConfig(delta_views=True),
    ) as cluster:
        for index in scenario.down_from_start:
            cluster.transport.isolate(f"h{index}")
        rid_to_index: Dict[int, int] = {}
        for number, (home_index, key) in enumerate(scenario.writes, start=1):
            rid = cluster.submit_write(
                f"h{home_index}", key, f"{scenario.name}-{number}"
            )
            rid_to_index[rid] = number
            records = cluster.wait_for(number, timeout=30.0)
            assert records[-1]["status"] == "committed", (
                f"{scenario.name}: delta live write {number} failed"
            )
            if scenario.midrun_crash and number == scenario.midrun_crash[0]:
                cluster.transport.isolate(f"h{scenario.midrun_crash[1]}")
        time.sleep(0.3)
        finals = cluster.shutdown()

    observers = [
        f"h{i}" for i in range(1, scenario.n + 1)
        if i not in crashed_indices(scenario)
    ]
    merged: Dict[str, Dict[int, int]] = {}
    for host in observers:
        for request_id, key, version in finals[host]["history"]:
            merged.setdefault(key, {})[version] = rid_to_index[request_id]
    return {key: sorted(v.items()) for key, v in merged.items()}


@pytest.mark.parametrize(
    "scenario", SCENARIOS, ids=[s.name for s in SCENARIOS]
)
class TestDeltaPlaneConformance:
    def test_des_delta_matches_full_plane_chains(self, scenario):
        expected = expected_chains(scenario)
        delta_chains = run_des_delta(scenario)
        assert delta_chains == expected
        assert chain_fingerprint(delta_chains) == chain_fingerprint(expected)

    def test_live_delta_matches_full_plane_chains(self, scenario):
        expected = expected_chains(scenario)
        delta_chains = run_live_delta(scenario)
        assert delta_chains == expected
        assert chain_fingerprint(delta_chains) == chain_fingerprint(expected)
