"""Smoke tests: every shipped example must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout}\n{result.stderr}"
    )
    return result.stdout


class TestExamples:
    def test_every_example_is_covered_here(self):
        assert EXAMPLES == [
            "internet_replication.py",
            "live_runtime.py",
            "protocol_comparison.py",
            "quickstart.py",
            "trace_walkthrough.py",
        ]

    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "committed" in out
        assert "identical histories at all replicas: True" in out

    def test_trace_walkthrough(self):
        out = run_example("trace_walkthrough.py")
        assert "protocol trace" in out
        assert "[commit]" in out

    def test_live_runtime(self):
        out = run_example("live_runtime.py")
        assert "12/12 updates committed" in out
        assert "consistent=True" in out

    @pytest.mark.slow
    def test_internet_replication(self):
        out = run_example("internet_replication.py")
        assert "audit after recovery: consistent=True" in out

    @pytest.mark.slow
    def test_protocol_comparison(self):
        out = run_example("protocol_comparison.py")
        assert "marp" in out
        assert "mcv" in out
