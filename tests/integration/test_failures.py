"""Failure-injection integration tests: crashes, recovery, link faults."""

from repro.analysis.consistency import audit
from repro.core.protocol import MARP
from repro.net.faults import CrashSchedule, FaultPlan, TransientLinkFaults
from repro.replication.client import attach_clients
from repro.replication.deployment import Deployment
from repro.workload.arrivals import ExponentialArrivals
from repro.workload.mix import OperationMix


class TestCrashRecovery:
    def test_minority_crash_during_workload(self):
        faults = FaultPlan(
            crashes=CrashSchedule().add("s4", 100, 3_000).add("s5", 200, 2_000)
        )
        dep = Deployment(n_replicas=5, seed=31, faults=faults)
        marp = MARP(dep)
        attach_clients(
            marp, ExponentialArrivals(80.0), OperationMix(1.0),
            max_requests_per_client=8,
        )
        dep.run(until=5_000_000)
        committed = [r for r in marp.records if r.status == "committed"]
        assert len(committed) == 40  # all eventually commit
        report = audit(dep)
        assert report.consistent  # recovery sync restored the crashed pair

    def test_repeated_crash_windows(self):
        crashes = CrashSchedule()
        crashes.add("s3", 100, 600)
        crashes.add("s3", 1_500, 2_000)
        dep = Deployment(n_replicas=3, seed=32,
                         faults=FaultPlan(crashes=crashes))
        marp = MARP(dep)
        attach_clients(
            marp, ExponentialArrivals(150.0), OperationMix(1.0),
            max_requests_per_client=6,
        )
        dep.run(until=5_000_000)
        assert marp.open_requests() == 0
        assert dep.server("s3").recoveries == 2
        assert audit(dep).consistent

    def test_agent_declares_crashed_replica_unavailable(self):
        faults = FaultPlan(
            crashes=CrashSchedule().add("s2", 0, 1_000_000)
        )
        dep = Deployment(n_replicas=3, seed=33, faults=faults)
        marp = MARP(dep)
        record = marp.submit_write("s1", "x", 1)
        dep.run(until=1_000_000)
        # With s2 down, the agent needs s1 + s3 = the full live majority.
        assert record.status == "committed"
        assert dep.platform("s1").migrations_failed > 0


class TestLinkFaults:
    def test_lossy_links_do_not_break_consistency(self):
        faults = FaultPlan(links=TransientLinkFaults(drop_probability=0.05))
        dep = Deployment(n_replicas=5, seed=34, faults=faults)
        marp = MARP(dep)
        attach_clients(
            marp, ExponentialArrivals(120.0), OperationMix(1.0),
            max_requests_per_client=5,
        )
        dep.run(until=10_000_000)
        committed = [r for r in marp.records if r.status == "committed"]
        assert len(committed) >= 20  # most commit despite drops
        report = audit(dep)
        assert report.divergence_free
        assert report.monotone

    def test_temporary_link_outage_heals(self):
        links = TransientLinkFaults().add_outage("s1", "s2", 0, 500)
        dep = Deployment(n_replicas=3, seed=35,
                         faults=FaultPlan(links=links))
        marp = MARP(dep)
        record = marp.submit_write("s1", "x", 1)
        dep.run(until=1_000_000)
        assert record.status == "committed"
        assert audit(dep).consistent


class TestBaselineFailures:
    def test_mcv_commits_with_minority_down(self):
        from repro.baselines.mcv import MajorityConsensusVoting

        faults = FaultPlan(
            crashes=CrashSchedule().add("s5", 0, 10_000_000)
        )
        dep = Deployment(n_replicas=5, seed=36, faults=faults)
        mcv = MajorityConsensusVoting(dep)
        record = mcv.submit_write("s1", "x", 1)
        dep.run(until=10_000_000)
        assert record.status == "committed"

    def test_marp_stalls_without_majority_then_recovers(self):
        # 3 of 5 replicas down: no majority can be locked. After they
        # recover, the pending agent finishes.
        crashes = CrashSchedule()
        for host in ("s3", "s4", "s5"):
            crashes.add(host, 0, 20_000)
        dep = Deployment(n_replicas=5, seed=37,
                         faults=FaultPlan(crashes=crashes))
        marp = MARP(dep)
        record = marp.submit_write("s1", "x", 1)
        dep.run(until=15_000)
        assert record.status == "pending"  # stalled, as it must be
        dep.run(until=5_000_000)
        assert record.status == "committed"
        assert record.completed_at > 20_000
