"""Acceptance: cross-hop journeys are linked, decomposable, and
identically structured in the DES and live backends.

The ISSUE 6 contract: a seeded 3-replica run must produce, for every
update, one whole-journey trace (arrive → claim → migrate × k →
commit) whose critical-path decomposition sums to the *measured* ALT
for that update, and the journey structure (span vocabulary, root,
per-agent isolation) must be the same whichever backend recorded it.
"""

import pytest

from repro.experiments.runner import RunConfig, run_once
from repro.obs.hub import ObservabilityHub, set_hub
from repro.obs.journeys import reconstruct_journeys
from repro.runtime import LiveCluster

#: span names an update agent's journey may contain, in either backend.
JOURNEY_VOCABULARY = {"request", "lock-wait", "migrate", "park", "claim"}


def _des_run():
    """A contended seeded DES run under a process-wide hub."""
    hub = ObservabilityHub()
    previous = set_hub(hub)
    try:
        result = run_once(RunConfig(
            protocol="marp",
            n_replicas=3,
            mean_interarrival=25.0,
            requests_per_client=4,
            seed=5,
        ))
    finally:
        set_hub(previous)
    return hub, result


def _live_run(writes=9):
    """A contended seeded live-thread run under a process-wide hub."""
    hub = ObservabilityHub()
    previous = set_hub(hub)
    try:
        with LiveCluster(n_replicas=3, backend="thread", seed=7) as cluster:
            for index in range(writes):
                cluster.submit_write(
                    cluster.hosts[index % len(cluster.hosts)], "x", index
                )
            records = cluster.wait_for(writes, timeout=60.0)
        audit = cluster.audit()
    finally:
        set_hub(previous)
    assert audit.consistent
    return hub, records


@pytest.fixture(scope="module")
def des():
    return _des_run()


@pytest.fixture(scope="module")
def live():
    return _live_run()


def _assert_per_agent_isolation(journeys):
    """Interleaved agents reassemble per-agent with no cross-linking."""
    seen_ids = set()
    for journey in journeys:
        ids = {span.span_id for span in journey.spans}
        assert ids.isdisjoint(seen_ids)
        seen_ids |= ids
        assert all(span.trace_id == journey.trace_id
                   for span in journey.spans)
        roots = [s for s in journey.spans if s.name == "request"]
        assert len(roots) == 1
        # every non-root span hangs off the journey's own root
        for span in journey.spans:
            if span is not journey.root:
                assert span.parent_id == journey.root.span_id


class TestDesBackend:
    def test_one_linked_journey_per_update(self, des):
        hub, result = des
        journeys = reconstruct_journeys(hub)
        assert len(journeys) == len(result.records) > 1
        assert all(j.backend == "des" for j in journeys)
        assert all(j.complete for j in journeys)
        assert not hub.tracer.open_spans()
        _assert_per_agent_isolation(journeys)

    def test_journey_shape(self, des):
        hub, result = des
        for journey in reconstruct_journeys(hub):
            names = {span.name for span in journey.spans}
            assert names <= JOURNEY_VOCABULARY
            assert {"request", "lock-wait", "claim"} <= names
            committed = [s for s in journey.named("claim")
                         if s.status == "committed"]
            assert len(committed) == (
                1 if journey.status == "committed" else 0
            )

    def test_decomposition_matches_measured_alt_att(self, des):
        hub, result = des
        records = {r.agent_id: r for r in result.records}
        journeys = reconstruct_journeys(hub)
        assert set(records) == {j.trace_id for j in journeys}
        for journey in journeys:
            record = records[journey.trace_id]
            path = journey.path
            assert (path.travel_ms + path.park_ms + path.retry_ms
                    + path.service_ms) == pytest.approx(path.alt_ms)
            assert (path.alt_ms + path.commit_ms
                    + path.tail_ms) == pytest.approx(path.att_ms)
            if record.status == "committed":
                assert path.alt_ms == pytest.approx(
                    record.lock_time, abs=1e-6
                )
                assert path.att_ms == pytest.approx(
                    record.total_time, abs=1e-6
                )

    def test_contention_produced_cross_hop_journeys(self, des):
        hub, _ = des
        journeys = reconstruct_journeys(hub)
        assert any(len(j.hops) >= 1 for j in journeys)
        for journey in journeys:
            for hop in journey.hops:
                assert hop.src != hop.dst


class TestLiveBackend:
    def test_one_linked_journey_per_update(self, live):
        hub, records = live
        journeys = reconstruct_journeys(hub)
        assert len(journeys) == len(records) > 1
        assert all(j.backend == "live" for j in journeys)
        assert all(j.complete for j in journeys)
        assert not hub.tracer.open_spans()
        _assert_per_agent_isolation(journeys)

    def test_spans_link_across_migration_hops(self, live):
        """Spans recorded by *different host threads* join one journey."""
        hub, _ = live
        journeys = reconstruct_journeys(hub)
        multi_hop = [j for j in journeys if len(j.hops) >= 1]
        assert multi_hop, "contended live run produced no migrations"
        for journey in multi_hop:
            # the itinerary is a connected chain of hops
            legs = journey.hops
            for previous, current in zip(legs, legs[1:]):
                assert previous.dst == current.src
            # ... ending (or pausing) away from home at least once
            assert any(hop.dst != journey.root.attrs["host"]
                       for hop in legs)

    def test_decomposition_matches_measured_alt_att(self, live):
        hub, records = live
        journeys = {j.trace_id: j for j in reconstruct_journeys(hub)}
        for record in records:
            journey = journeys[record["agent_id"]]
            path = journey.path
            assert (path.travel_ms + path.park_ms + path.retry_ms
                    + path.service_ms) == pytest.approx(path.alt_ms)
            assert (path.alt_ms + path.commit_ms
                    + path.tail_ms) == pytest.approx(path.att_ms)
            if record["status"] == "committed":
                measured_alt = (
                    record["lock_acquired_at"] - record["dispatched_at"]
                )
                measured_att = (
                    record["completed_at"] - record["dispatched_at"]
                )
                assert path.alt_ms == pytest.approx(
                    measured_alt, abs=1e-3
                )
                assert path.att_ms == pytest.approx(
                    measured_att, abs=1e-3
                )


class TestBackendParity:
    def test_identical_journey_structure(self, des, live):
        """Both backends produce the same journey shape: same span
        vocabulary, one request root, one committed claim, linked
        migrate hops — only the clock differs."""
        des_journeys = reconstruct_journeys(des[0])
        live_journeys = reconstruct_journeys(live[0])

        def shape(journeys):
            vocabulary = set()
            for journey in journeys:
                vocabulary |= {span.name for span in journey.spans}
            return vocabulary

        des_vocab = shape(des_journeys)
        live_vocab = shape(live_journeys)
        assert des_vocab <= JOURNEY_VOCABULARY
        assert live_vocab <= JOURNEY_VOCABULARY
        assert {"request", "lock-wait", "migrate", "claim"} <= des_vocab
        assert {"request", "lock-wait", "migrate", "claim"} <= live_vocab
        for journeys in (des_journeys, live_journeys):
            for journey in journeys:
                if journey.status != "committed":
                    continue
                committed = [s for s in journey.named("claim")
                             if s.status == "committed"]
                assert len(committed) == 1
