"""End-to-end MARP integration tests over full workloads."""

import pytest

from repro.analysis.consistency import assert_consistent, audit
from repro.analysis.metrics import alt, att, prk
from repro.core.config import MARPConfig
from repro.core.protocol import MARP
from repro.net.latency import wan_profile
from repro.replication.client import attach_clients
from repro.replication.deployment import Deployment
from repro.workload.arrivals import ExponentialArrivals
from repro.workload.mix import OperationMix


def run_workload(dep, marp, mean_gap=60.0, per_client=10,
                 write_fraction=1.0, keys=None, horizon=2_000_000):
    attach_clients(
        marp,
        ExponentialArrivals(mean_gap),
        OperationMix(write_fraction=write_fraction, keys=keys),
        max_requests_per_client=per_client,
    )
    dep.run(until=horizon)


class TestFullWorkloads:
    def test_update_only_workload_commits_consistently(self):
        dep = Deployment(n_replicas=5, seed=11)
        marp = MARP(dep)
        run_workload(dep, marp, mean_gap=40.0, per_client=12)
        assert marp.open_requests() == 0
        assert len(marp.completed_writes()) == 60
        report = assert_consistent(dep)
        assert report.complete
        assert report.total_commits == 60

    def test_mixed_read_write_workload(self):
        dep = Deployment(n_replicas=5, seed=12)
        marp = MARP(dep)
        run_workload(dep, marp, per_client=20, write_fraction=0.3)
        reads = [r for r in marp.records if r.op == "read"]
        assert reads, "expected some reads in a 30% write mix"
        assert all(r.status == "read-done" for r in reads)
        assert_consistent(dep)

    def test_multi_key_workload(self):
        dep = Deployment(n_replicas=5, seed=13)
        marp = MARP(dep)
        run_workload(dep, marp, per_client=10, keys=["a", "b", "c"])
        report = assert_consistent(dep)
        assert report.complete
        keys_written = set(dep.server("s1").store.keys())
        assert keys_written <= {"a", "b", "c"}
        assert len(keys_written) >= 2

    def test_wan_latency_profile(self):
        dep = Deployment(n_replicas=3, seed=14, latency=wan_profile())
        marp = MARP(dep)
        run_workload(dep, marp, mean_gap=400.0, per_client=5)
        assert marp.open_requests() == 0
        assert_consistent(dep)
        # WAN hops are tens of ms; ALT must reflect at least 2 visits.
        assert alt(marp.records) > 40.0

    def test_random_cost_topology_with_cost_sorted_itinerary(self):
        from repro.net.topology import Topology
        from repro.sim.rng import RandomStreams

        streams = RandomStreams(77)
        topo = Topology.random_costs(
            ["s1", "s2", "s3", "s4", "s5"], streams.stream("topo"),
            low=0.5, high=3.0,
        )
        dep = Deployment(seed=15, topology=topo)
        marp = MARP(dep)
        run_workload(dep, marp, per_client=6)
        assert marp.open_requests() == 0
        assert_consistent(dep)

    def test_metrics_internally_coherent(self):
        dep = Deployment(n_replicas=5, seed=16)
        marp = MARP(dep)
        run_workload(dep, marp, mean_gap=30.0, per_client=10)
        records = marp.records
        assert att(records) >= alt(records)
        fractions = prk(records, 5)
        assert abs(sum(fractions.values()) - 1.0) < 1e-9

    def test_even_replica_count(self):
        dep = Deployment(n_replicas=4, seed=17)
        marp = MARP(dep)
        run_workload(dep, marp, per_client=8)
        assert marp.open_requests() == 0
        # majority of 4 is 3
        for record in marp.completed_writes():
            assert record.visits_to_lock >= 3
        assert_consistent(dep)

    def test_deterministic_given_seed(self):
        def run(seed):
            dep = Deployment(n_replicas=3, seed=seed)
            marp = MARP(dep)
            run_workload(dep, marp, per_client=6)
            # request ids come from a process-global counter, so compare
            # the behaviourally meaningful fields only
            return [
                (r.home, r.status, r.created_at, r.completed_at,
                 r.visits_to_lock)
                for r in marp.records
            ]

        assert run(99) == run(99)
        assert run(99) != run(100)

    def test_two_replicas_degenerate_cluster(self):
        # N=2: majority is 2 -> every update needs both replicas.
        dep = Deployment(n_replicas=2, seed=18)
        marp = MARP(dep)
        record = marp.submit_write("s1", "x", 1)
        dep.run(until=100_000)
        assert record.status == "committed"
        assert record.visits_to_lock == 2

    def test_single_replica_trivial_cluster(self):
        dep = Deployment(n_replicas=1, seed=19)
        marp = MARP(dep)
        record = marp.submit_write("s1", "x", 1)
        dep.run(until=100_000)
        assert record.status == "committed"
        assert record.visits_to_lock == 1


class TestItineraryVariants:
    @pytest.mark.parametrize(
        "strategy",
        ["cost-sorted", "initial-cost-order", "static-order", "random-order"],
    )
    def test_all_itineraries_commit_consistently(self, strategy):
        dep = Deployment(n_replicas=5, seed=21)
        marp = MARP(dep, config=MARPConfig(itinerary=strategy))
        run_workload(dep, marp, per_client=5)
        assert marp.open_requests() == 0
        assert_consistent(dep)


class TestBulletinAblation:
    def test_disabled_bulletin_still_consistent(self):
        from repro.replication.server import ReplicaConfig

        dep = Deployment(
            n_replicas=5, seed=22,
            replica_config=ReplicaConfig(enable_bulletin=False),
        )
        marp = MARP(dep)
        run_workload(dep, marp, mean_gap=30.0, per_client=8)
        assert marp.open_requests() == 0
        report = audit(dep)
        assert report.consistent
