"""Network partition integration tests.

The paper contrasts quorum protocols (partition-safe) with Available
Copies ("vulnerable to communication partitions"). These tests exercise
both sides of that contrast plus partition healing.
"""

from repro.analysis.consistency import audit
from repro.baselines.available_copies import AvailableCopies
from repro.baselines.mcv import MajorityConsensusVoting
from repro.core.protocol import MARP
from repro.net.faults import FaultPlan, TransientLinkFaults
from repro.replication.deployment import Deployment

FOREVER = 100_000_000.0


def partitioned_deployment(seed, majority_side, minority_side,
                           start=0.0, end=FOREVER):
    links = TransientLinkFaults().add_partition(
        majority_side, minority_side, start, end,
    )
    return Deployment(
        n_replicas=len(majority_side) + len(minority_side),
        seed=seed,
        faults=FaultPlan(links=links),
    )


class TestPartitionValidation:
    def test_partition_sides_must_be_disjoint(self):
        import pytest

        from repro.errors import NetworkError

        with pytest.raises(NetworkError):
            TransientLinkFaults().add_partition(
                ["a", "b"], ["b", "c"], 0, 10,
            )
        with pytest.raises(NetworkError):
            TransientLinkFaults().add_partition([], ["a"], 0, 10)


class TestMARPUnderPartition:
    def test_majority_side_commits_minority_side_stalls(self):
        dep = partitioned_deployment(
            seed=60, majority_side=["s1", "s2", "s3"],
            minority_side=["s4", "s5"],
        )
        marp = MARP(dep)
        majority_write = marp.submit_write("s1", "x", "majority")
        minority_write = marp.submit_write("s4", "x", "minority")
        dep.run(until=60_000)
        assert majority_write.status == "committed"
        assert minority_write.status == "pending"  # stalls, never splits
        # Nothing diverged: the minority simply has not applied anything.
        report = audit(dep)
        assert report.divergence_free
        assert report.monotone

    def test_partition_heals_and_minority_catches_up(self):
        dep = partitioned_deployment(
            seed=61, majority_side=["s1", "s2", "s3"],
            minority_side=["s4", "s5"],
            start=0.0, end=30_000.0,
        )
        # COMMITs dropped by the partition are healed by the background
        # information transfer (anti-entropy), not by crash recovery.
        dep.enable_anti_entropy(mean_interval=10_000.0)
        marp = MARP(dep)
        during = marp.submit_write("s1", "x", "during-partition")
        minority = marp.submit_write("s4", "y", "from-minority")
        dep.run(until=2_000_000)
        assert during.status == "committed"
        assert minority.status == "committed"  # finished after healing
        assert minority.completed_at > 30_000.0
        report = audit(dep)
        assert report.consistent
        assert report.final_state_equal
        # the minority's *histories* legitimately lack the dropped COMMIT
        # (anti-entropy transfers state, not the commit log), so
        # `complete` may be false while every store agrees.

    def test_mcv_also_partition_safe(self):
        dep = partitioned_deployment(
            seed=62, majority_side=["s1", "s2", "s3"],
            minority_side=["s4", "s5"],
        )
        mcv = MajorityConsensusVoting(dep)
        majority_write = mcv.submit_write("s2", "x", 1)
        dep.run(until=200_000)
        assert majority_write.status == "committed"
        assert audit(dep).divergence_free


class TestAvailableCopiesPartitionVulnerability:
    def test_both_sides_accept_writes_and_diverge(self):
        """The paper's §3.1 warning, demonstrated: with no quorum
        intersection, each side of a partition independently accepts
        writes to the same object."""
        dep = partitioned_deployment(
            seed=63, majority_side=["s1", "s2"], minority_side=["s3"],
        )
        ac = AvailableCopies(dep, detection_timeout=50.0)
        left = ac.submit_write("s1", "x", "left-value")
        right = ac.submit_write("s3", "x", "right-value")
        dep.run(until=1_000_000)
        assert left.status == "committed"
        assert right.status == "committed"  # both sides "succeed"!
        report = audit(dep)
        assert not report.final_state_equal  # split brain
