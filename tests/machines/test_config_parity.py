"""The kernel tunables are the single source of protocol defaults.

Each backend config dataclass (``MARPConfig``/``ReplicaConfig`` for the
DES, ``LiveConfig`` for the live runtime) must agree field-for-field
with the kernel-level :data:`DES_TUNABLES` / :data:`LIVE_TUNABLES` it
sources its defaults from — the drift these tests prevent is exactly
the duplication the sans-IO refactor removed.
"""

import dataclasses

import pytest

from repro.core.config import MARPConfig
from repro.core.machines.config import (
    AGENT_TUNABLE_FIELDS,
    DES_TUNABLES,
    LIVE_TUNABLES,
    REPLICA_TUNABLE_FIELDS,
    ProtocolTunables,
)
from repro.errors import ProtocolError
from repro.replication.server import ReplicaConfig
from repro.runtime.host import LiveConfig


class TestDefaultsParity:
    def test_marp_config_agent_fields_match_des_tunables(self):
        config = MARPConfig()
        for name in AGENT_TUNABLE_FIELDS:
            assert getattr(config, name) == getattr(DES_TUNABLES, name), name

    def test_replica_config_fields_match_des_tunables(self):
        config = ReplicaConfig()
        for name in REPLICA_TUNABLE_FIELDS:
            assert getattr(config, name) == getattr(DES_TUNABLES, name), name

    def test_live_config_fields_match_live_tunables(self):
        config = LiveConfig()
        for name in AGENT_TUNABLE_FIELDS + REPLICA_TUNABLE_FIELDS:
            assert getattr(config, name) == getattr(LIVE_TUNABLES, name), name

    def test_field_lists_cover_every_tunable(self):
        declared = {f.name for f in dataclasses.fields(ProtocolTunables)}
        assert set(AGENT_TUNABLE_FIELDS) | set(REPLICA_TUNABLE_FIELDS) == declared


class TestTunablesValidation:
    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DES_TUNABLES.park_timeout = 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"park_timeout": 0.0},
            {"ack_timeout": -1.0},
            {"max_claims": 0},
            {"claim_backoff": -0.5},
            {"grant_ttl": 0.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ProtocolError):
            ProtocolTunables(**kwargs)
