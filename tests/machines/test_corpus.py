"""Deterministic replay of the adversary regression corpus.

Every ``corpus/*.json`` file is a schedule the adversary (or a human)
once found interesting enough to pin: hand-picked protocol edges
converted to schedule form, plus shrunk counterexamples from mutation
runs. Each one is replayed on every test run and held to the same two
invariants the live campaigns assert — so a one-in-ten-thousand
interleaving, once caught, stays caught forever.

To promote a new failure: shrink it (``shrink_schedule`` or the
``repro adversary`` CLI's ``--save-failures``), verify it passes on
the fixed kernel, drop the JSON here with a descriptive name. See
``docs/fault-campaigns.md``.
"""

import json
import pathlib

import pytest

from repro.core.machines import Schedule, check_schedule, run_schedule

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.json"))


def corpus_ids(path):
    return path.stem


def test_corpus_is_not_empty():
    assert len(CORPUS) >= 5, (
        f"expected the seeded regression corpus in {CORPUS_DIR}, "
        f"found {len(CORPUS)} schedules"
    )


@pytest.mark.parametrize("path", CORPUS, ids=corpus_ids)
def test_corpus_schedule_upholds_invariants(path):
    schedule = Schedule.load(str(path))
    outcome = check_schedule(schedule)
    # A corpus schedule that no longer does anything is dead weight:
    # every one must exercise at least one commit or one fault op.
    assert outcome.statuses or schedule.ops, path.stem


@pytest.mark.parametrize("path", CORPUS, ids=corpus_ids)
def test_corpus_schedule_replays_deterministically(path):
    schedule = Schedule.load(str(path))
    first = check_schedule(schedule)
    second = check_schedule(schedule)
    assert first.statuses == second.statuses
    assert first.chains == second.chains
    assert first.events == second.events


@pytest.mark.parametrize("path", CORPUS, ids=corpus_ids)
def test_corpus_json_round_trips(path):
    text = path.read_text(encoding="utf-8")
    schedule = Schedule.from_json(text)
    assert Schedule.from_json(schedule.to_json()) == schedule
    # The on-disk form is the canonical rendering (so diffs stay clean).
    assert json.loads(text) == schedule.to_dict()


class TestKnownOutcomes:
    """Pin the interesting facts of the seeded corpus entries, so a
    behaviour drift shows up as more than a silent still-passes."""

    def load(self, name):
        return Schedule.load(str(CORPUS_DIR / f"{name}.json"))

    def test_park_race_both_commit_in_order(self):
        harness, _ = run_schedule(self.load("park_race_contention"))
        assert harness.statuses() == {1: "committed", 2: "committed"}
        chains = harness.commit_chains()
        assert [v for v, _ in chains["x"]] == [1, 2]

    def test_three_way_designee_takes_version_one(self):
        harness, ids = run_schedule(self.load("three_way_tie_break"))
        assert set(harness.statuses().values()) == {"committed"}
        chains = harness.commit_chains()
        assert chains["x"][0] == (1, f"v-{min(ids).host}")

    def test_duplicate_commit_applies_nothing_twice(self):
        harness, _ = run_schedule(
            self.load("duplicate_commit_after_restart")
        )
        assert harness.statuses() == {1: "committed"}
        assert harness.replicas["s3"].read("x").value == "v1"
        assert len(harness.replicas["s3"].history) == 0

    def test_heal_race_serializes_by_ceiling(self):
        harness, _ = run_schedule(
            self.load("partition_heal_races_grant_ttl")
        )
        assert harness.commit_chains() == {"x": [(1, "a"), (2, "b")]}

    def test_majority_cex_passes_on_the_real_kernel(self):
        # Its counterpart in tests/properties/test_prop_adversary.py
        # re-breaks the majority check and asserts this same schedule
        # then fails.
        harness, _ = run_schedule(
            self.load("partition_split_brain_majority_cex")
        )
        assert set(harness.statuses().values()) == {"committed"}
        versions = [v for v, _ in harness.commit_chains()["x"]]
        assert versions == [1, 2]
