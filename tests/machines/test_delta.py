"""Unit coverage for the delta-view data plane's kernel pieces.

Three layers:

* :class:`DeltaJournal` — event replay, requeue cancellation, window
  eviction and reset-forced fallback;
* :meth:`LockingTable.apply_delta` / :meth:`LockingTable.ingest` — exact
  snapshot reconstruction, base-mismatch rejection, and the O(1)
  seq-skip in :meth:`LockingTable.update`;
* the :meth:`LockingTable.update` edge cases the delta path must
  preserve: monotone merge of ``updated`` knowledge from stale views,
  no adoption at equal ``as_of``, and memo invalidation on UAL-only
  changes (plus the memoised ``known_hosts``).
"""

import pytest

from repro.errors import ProtocolError
from repro.agents.identity import AgentId
from repro.core.machines.delta import DeltaJournal
from repro.core.machines.table import LockingTable
from repro.core.machines.wire import SharedView, SharedViewDelta


def aid(n: int) -> AgentId:
    return AgentId("h", float(n), 0)


def view(host, as_of, ids=(), updated=(), versions=None, seq=-1):
    return SharedView(
        host=host,
        as_of=as_of,
        view=tuple(ids),
        updated=frozenset(updated),
        versions=versions,
        seq=seq,
    )


# -- DeltaJournal ------------------------------------------------------------


class TestDeltaJournal:
    def test_bump_is_monotone_and_delta_replays_events(self):
        j = DeltaJournal("s1")
        j.bump("enq", aid(1))
        j.bump("enq", aid(2))
        j.bump("fin", aid(3))
        j.bump("ver", ("x", 4))
        j.bump("ver", ("x", 2))  # stale cell write: newest value wins
        d = j.delta_since(0, as_of=10.0)
        assert d is not None
        assert d.base_seq == 0 and d.seq == 5
        assert d.appended == (aid(1), aid(2))
        assert d.removed == ()
        assert d.finished == (aid(3),)
        assert d.versions == {"x": 4}

    def test_enqueue_then_dequeue_inside_window_cancels_out(self):
        j = DeltaJournal("s1")
        j.bump("enq", aid(1))
        j.bump("deq", aid(1))
        d = j.delta_since(0, as_of=1.0)
        assert d.appended == () and d.removed == ()

    def test_requeue_of_pre_window_entry_is_remove_plus_append(self):
        j = DeltaJournal("s1")
        j.bump("enq", aid(1))  # seq 1, before the receiver's base
        base = j.seq
        j.bump("deq", aid(1))
        j.bump("enq", aid(1))
        d = j.delta_since(base, as_of=2.0)
        assert d.removed == (aid(1),)
        assert d.appended == (aid(1),)

    def test_caught_up_receiver_gets_an_empty_delta(self):
        j = DeltaJournal("s1")
        j.bump("enq", aid(1))
        d = j.delta_since(j.seq, as_of=5.0)
        assert d is not None
        assert d.removed == d.appended == d.finished == ()
        assert d.versions is None
        assert d.base_seq == d.seq == j.seq

    def test_evicted_base_declines_delta(self):
        j = DeltaJournal("s1", capacity=2)
        for n in range(5):
            j.bump("enq", aid(n))
        assert j.delta_since(0, as_of=1.0) is None  # base fell off
        assert j.delta_since(j.seq - 2, as_of=1.0) is not None

    def test_reset_invalidates_every_base(self):
        j = DeltaJournal("s1")
        j.bump("enq", aid(1))
        base = j.seq
        j.reset()
        assert j.resets == 1
        assert j.delta_since(base, as_of=1.0) is None
        # and the journal keeps working after the reset
        j.bump("enq", aid(2))
        d = j.delta_since(j.seq - 1, as_of=2.0)
        assert d is not None and d.appended == (aid(2),)

    def test_future_base_declines_delta(self):
        j = DeltaJournal("s1")
        assert j.delta_since(7, as_of=1.0) is None


# -- apply_delta / ingest ----------------------------------------------------


class TestApplyDelta:
    def _seeded_table(self):
        table = LockingTable(delta_views=True)
        table.update(view(
            "s1", 1.0, ids=[aid(1), aid(2), aid(3)],
            versions={"x": 1}, seq=3,
        ))
        assert table.acked_seq("s1") == 3
        return table

    def test_reconstruction_matches_full_snapshot(self):
        table = self._seeded_table()
        delta = SharedViewDelta(
            host="s1", as_of=2.0, base_seq=3, seq=7,
            removed=(aid(2),), appended=(aid(4),),
            finished=(aid(2),), versions={"x": 2, "y": 1},
        )
        assert table.apply_delta(delta)
        # What a full snapshot at seq 7 would have said:
        assert table.views["s1"] == view(
            "s1", 2.0, ids=[aid(1), aid(3), aid(4)],
            updated=[aid(2)], versions={"x": 2, "y": 1}, seq=7,
        )
        assert table.acked_seq("s1") == 7
        assert aid(2) in table.ual
        assert table.max_versions == {"x": 2, "y": 1}
        # effective top skips nothing new; queue order is preserved
        assert table.effective_top("s1") == aid(1)

    def test_base_mismatch_raises(self):
        table = self._seeded_table()
        stale = SharedViewDelta(
            host="s1", as_of=2.0, base_seq=1, seq=7, appended=(aid(9),)
        )
        with pytest.raises(ProtocolError):
            table.apply_delta(stale)

    def test_delta_for_unknown_host_raises(self):
        table = LockingTable(delta_views=True)
        with pytest.raises(ProtocolError):
            table.apply_delta(
                SharedViewDelta(host="s9", as_of=1.0, base_seq=-1, seq=2)
            )

    def test_ingest_dispatches_on_type(self):
        table = self._seeded_table()
        assert table.ingest(view("s2", 1.0, ids=[aid(5)], seq=1))
        assert table.ingest(SharedViewDelta(
            host="s1", as_of=2.0, base_seq=3, seq=4, finished=(aid(1),)
        ))
        assert table.effective_top("s1") == aid(2)
        assert table.effective_top("s2") == aid(5)

    def test_seq_skip_discards_already_acked_views(self):
        table = self._seeded_table()
        before = table._mutations
        # A replayed/bulletin copy at or below the acked sequence is
        # dropped in O(1) — no merge, no memo invalidation.
        assert not table.update(view(
            "s1", 0.5, ids=[aid(1)], updated=[aid(9)], seq=3,
        ))
        assert aid(9) not in table.ual
        assert table._mutations == before
        # An unstamped copy (classic plane) still merges knowledge.
        assert not table.update(view("s1", 0.5, ids=[aid(1)],
                                     updated=[aid(9)]))
        assert aid(9) in table.ual

    def test_empty_delta_refreshes_freshness_and_ack(self):
        table = self._seeded_table()
        delta = SharedViewDelta(host="s1", as_of=9.0, base_seq=3, seq=3)
        assert not table.apply_delta(delta)  # nothing changed...
        assert table.views["s1"].as_of == 9.0  # ...but the view is fresher


# -- update() edge cases the delta path must preserve ------------------------


class TestUpdateEdgeCases:
    def test_stale_view_with_new_updated_knowledge_merges_monotonically(self):
        table = LockingTable()
        assert table.update(view("s1", 5.0, ids=[aid(1), aid(2)]))
        # Older snapshot, but it knows aid(1) finished: the UAL must
        # grow even though the queue snapshot is not adopted.
        assert not table.update(view("s1", 1.0, ids=[aid(1)],
                                     updated=[aid(1)], versions={"x": 2}))
        assert table.views["s1"].as_of == 5.0
        assert aid(1) in table.ual
        assert table.max_versions == {"x": 2}
        assert table.effective_top("s1") == aid(2)

    def test_equal_as_of_view_is_not_adopted(self):
        table = LockingTable()
        assert table.update(view("s1", 5.0, ids=[aid(1)]))
        assert not table.update(view("s1", 5.0, ids=[aid(2)]))
        assert table.views["s1"].view == (aid(1),)

    def test_tops_cache_invalidated_by_ual_only_change(self):
        table = LockingTable()
        table.update(view("s1", 1.0, ids=[aid(1), aid(2)]))
        assert table.tops() == {"s1": aid(1)}  # primes the memo
        # Stale view, no adoption — only the UAL changes.
        table.update(view("s1", 0.5, updated=[aid(1)]))
        assert table.tops() == {"s1": aid(2)}

    def test_known_hosts_is_cached_until_a_new_host_lands(self):
        table = LockingTable()
        table.update(view("s2", 1.0))
        first = table.known_hosts
        assert first == ["s2"]
        assert table.known_hosts is first  # memo hit, no re-sort
        table.update(view("s1", 1.0))
        assert table.known_hosts == ["s1", "s2"]


# -- compact suitcase accounting ---------------------------------------------


class TestDeltaWireSize:
    def test_delta_tables_report_smaller_suitcases(self):
        def load(table):
            for h in range(20):
                table.update(view(
                    f"s{h}", 1.0,
                    ids=[aid(n) for n in range(50)],
                    updated=[aid(n) for n in range(25)],
                    versions={f"k{i}": 1 for i in range(10)},
                    seq=h if table.delta_views else -1,
                ))

        full = LockingTable()
        compact = LockingTable(delta_views=True)
        load(full)
        load(compact)
        # Same knowledge, same decisions ...
        assert compact.tops() == full.tops()
        # ... but the shared ids/bitset encoding beats per-view repeats
        # of full AgentId tuples (2× even when every host was adopted as
        # a full snapshot; the bench measures the much larger delta-mode
        # ratio at N=200).
        assert compact.wire_size() * 2 < full.wire_size()

    def test_classic_table_wire_size_is_unchanged_by_the_flag_field(self):
        table = LockingTable()
        table.update(view("s1", 1.0, ids=[aid(1)], versions={"x": 1}))
        expected = (
            16  # table container
            + 16 + len("s1") + 8  # host + as_of
            + aid(1).wire_size()  # queue entry
            + 16 * 1  # version cell
        )
        assert table.wire_size() == expected
