"""Differential tests: the packed kernel data plane vs its reference.

The flat-state rewrite backs ``LockingList``/``UpdatedList``/
``LockingTable``/``VersionedStore`` with interned integer slots, packed
per-host arrays and mutation-counter memos (``docs/architecture.md``,
"Kernel internals"). Nothing interned ever crosses the wire, so the
whole rewrite must be *invisible*: these tests hold the fast path to
plain-Python models and to the retained executable specification
``decide_reference``, and check that interning survives every
serialisation boundary (pickle, adversary-schedule JSON) without
leaking into observable behaviour.
"""

import pickle
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents.identity import AgentId
from repro.core.machines import (
    Interner,
    LockEntry,
    LockingList,
    LockingTable,
    SharedView,
    UpdatedList,
    VersionedStore,
    decide,
    decide_reference,
    rank_queue,
)


def aid(n: int) -> AgentId:
    return AgentId("h", float(n), 0)


# -- randomized table states ------------------------------------------------


@st.composite
def lock_tables(draw, max_hosts=7, max_agents=8):
    """A random cluster lock state, built through the real merge path.

    Unlike the simpler strategy in ``tests/properties``, this one feeds
    *multiple* snapshots per host (some stale, some fresh) so the
    freshest-wins adoption, the monotone UAL merge and the version-fold
    paths are all exercised before the table under test is returned.
    """
    n_hosts = draw(st.integers(min_value=1, max_value=max_hosts))
    agents = draw(
        st.lists(
            st.integers(min_value=0, max_value=max_agents),
            min_size=1, max_size=max_agents, unique=True,
        )
    )
    table = LockingTable()
    views = []
    known = draw(st.integers(min_value=0, max_value=n_hosts))
    for index in range(known):
        snapshots = draw(st.integers(min_value=1, max_value=3))
        for _ in range(snapshots):
            queue = draw(
                st.lists(st.sampled_from(agents), max_size=len(agents),
                         unique=True)
            )
            finished = draw(
                st.lists(st.sampled_from(agents), max_size=3, unique=True)
            )
            view = SharedView(
                host=f"s{index + 1}",
                as_of=float(draw(st.integers(min_value=0, max_value=4))),
                view=tuple(aid(n) for n in queue),
                updated=frozenset(aid(n) for n in finished),
                versions=draw(
                    st.dictionaries(
                        st.sampled_from(["x", "y"]),
                        st.integers(min_value=1, max_value=9),
                        max_size=2,
                    )
                ),
            )
            views.append(view)
            table.update(view)
    extra_done = frozenset(
        aid(n) for n in draw(
            st.lists(st.sampled_from(agents), max_size=3, unique=True)
        )
    )
    unavailable = frozenset(
        f"s{k + 1}" for k in draw(
            st.lists(st.integers(min_value=0, max_value=max_hosts - 1),
                     max_size=3, unique=True)
        )
    )
    return n_hosts, agents, table, views, extra_done, unavailable


# -- decide == decide_reference ---------------------------------------------


@given(data=lock_tables())
@settings(max_examples=300, deadline=None)
def test_decide_matches_reference(data):
    """The packed/memoised rule cascade is the specification, exactly."""
    n_hosts, agents, table, _views, extra_done, unavailable = data
    for agent in agents:
        fast = decide(
            table, n_hosts, aid(agent),
            extra_done=extra_done, unavailable=unavailable,
        )
        ref = decide_reference(
            table, n_hosts, aid(agent),
            extra_done=extra_done, unavailable=unavailable,
        )
        assert fast == ref


@given(data=lock_tables())
@settings(max_examples=150, deadline=None)
def test_decide_memo_survives_further_mutation(data):
    """A cached decision must be invalidated by any top-moving change."""
    n_hosts, agents, table, _views, _extra, _unavail = data
    decide(table, n_hosts, aid(agents[0]))  # prime the memo
    newcomer = aid(99)
    table.update(SharedView(
        host="s1", as_of=99.0,
        view=(newcomer,) + (table.view_of("s1").view if
                            table.view_of("s1") else ()),
        updated=frozenset(), versions={},
    ))
    for agent in agents:
        assert decide(table, n_hosts, aid(agent)) == decide_reference(
            table, n_hosts, aid(agent)
        )


@given(data=lock_tables())
@settings(max_examples=100, deadline=None)
def test_rank_queue_matches_reference_composition(data):
    """Pipelined grant prediction agrees with the reference cascade."""
    n_hosts, _agents, table, _views, _extra, _unavail = data
    probe = AgentId("\x00rank-probe", float("-inf"), 0)
    order = []
    done = set()
    while True:
        decision = decide_reference(
            table, n_hosts, probe, extra_done=frozenset(done)
        )
        if decision.winner is None or decision.winner in done:
            break
        order.append(decision.winner)
        done.add(decision.winner)
    assert rank_queue(table, n_hosts) == tuple(order)


# -- interning is invisible -------------------------------------------------


@given(data=lock_tables())
@settings(max_examples=100, deadline=None)
def test_pickle_round_trip_rebuilds_packed_index(data):
    """Pickles carry only wire state; the packed index is rebuilt."""
    n_hosts, agents, table, _views, extra_done, _unavail = data
    clone = pickle.loads(pickle.dumps(table))
    assert clone.views == table.views
    assert set(clone.ual.as_set()) == set(table.ual.as_set())
    assert clone.max_versions == table.max_versions
    assert clone.tops(extra_done) == table.tops(extra_done)
    assert clone.top_counts() == table.top_counts()
    assert clone.wire_size() == table.wire_size()
    for agent in agents:
        assert decide(clone, n_hosts, aid(agent)) == decide(
            table, n_hosts, aid(agent)
        )


@given(data=lock_tables(), seed=st.integers(min_value=0, max_value=2**32))
@settings(max_examples=100, deadline=None)
def test_intern_order_never_changes_a_decision(data, seed):
    """Feeding the same views in any order permutes intern slots but
    must never change tops, tallies or decisions (slots are aliases,
    never order).

    Views are first deduplicated per ``(host, as_of)``: among *equal*
    timestamps adoption is first-arrival by design, so only the
    tie-free portion of the stream is order-independent.
    """
    n_hosts, agents, _table, views, _extra, _unavail = data
    seen = set()
    unique = []
    for view in views:
        stamp = (view.host, view.as_of)
        if stamp not in seen:
            seen.add(stamp)
            unique.append(view)
    table = LockingTable()
    for view in unique:
        table.update(view)
    shuffled = list(unique)
    random.Random(seed).shuffle(shuffled)
    other = LockingTable()
    for view in shuffled:
        other.update(view)
    assert other.tops() == table.tops()
    assert other.top_counts() == table.top_counts()
    assert other.max_versions == table.max_versions
    for agent in agents:
        assert decide(other, n_hosts, aid(agent)) == decide(
            table, n_hosts, aid(agent)
        )


def test_interner_round_trip_and_sort_keys():
    interner = Interner()
    ids = [AgentId("b", 2.0, 0), AgentId("a", 2.0, 1), AgentId("a", 1.0, 0)]
    slots = [interner.intern(agent_id) for agent_id in ids]
    assert slots == [0, 1, 2]  # dense, first-seen order
    assert [interner.intern(agent_id) for agent_id in ids] == slots
    for agent_id, slot in zip(ids, slots):
        assert interner.value(slot) == agent_id
        assert interner.index_of(agent_id) == slot
    # Slot order is *not* agent order: tie-breaks use the sort-key slab,
    # which must mirror the AgentId's own total order.
    assert min(slots, key=interner.sort_key) == 2
    assert interner.value(min(slots, key=interner.sort_key)) == min(ids)
    assert interner.index_of(AgentId("zz", 9.0, 9)) is None
    assert len(interner) == 3


# -- flat structures vs plain models ----------------------------------------


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["append", "remove", "clear"]),
                  st.integers(min_value=0, max_value=9)),
        max_size=40,
    )
)
@settings(max_examples=150, deadline=None)
def test_locking_list_matches_model(ops):
    ll = LockingList("s1")
    model = []  # ordered agent ids
    clock = 0.0
    for op, n in ops:
        agent_id = aid(n)
        if op == "append":
            if agent_id not in model:
                clock += 1.0
                ll.append(LockEntry(agent_id, n, clock))
                model.append(agent_id)
        elif op == "remove":
            assert ll.remove(agent_id) == (agent_id in model)
            if agent_id in model:
                model.remove(agent_id)
        else:
            ll.clear()
            model.clear()
        assert ll.view() == tuple(model)
        assert len(ll) == len(model)
        assert ll.top() == (model[0] if model else None)
        for probe in range(10):
            expected = (model.index(aid(probe))
                        if aid(probe) in model else None)
            assert ll.rank(aid(probe)) == expected
            assert (aid(probe) in ll) == (aid(probe) in model)


@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("add"), st.integers(0, 9)),
            st.tuples(st.just("merge"),
                      st.lists(st.integers(0, 9), max_size=5)),
        ),
        max_size=30,
    )
)
@settings(max_examples=150, deadline=None)
def test_updated_list_matches_model(ops):
    ul = UpdatedList()
    model = []  # insertion-ordered unique ids
    for op, arg in ops:
        if op == "add":
            agent_id = aid(arg)
            assert ul.add(agent_id) == (agent_id not in model)
            if agent_id not in model:
                model.append(agent_id)
        else:
            batch = [aid(n) for n in arg]
            expected_new = len({a for a in batch if a not in model})
            assert ul.merge(batch) == expected_new
            for agent_id in batch:
                if agent_id not in model:
                    model.append(agent_id)
        assert ul.ids() == tuple(model)
        assert ul.as_set() == frozenset(model)
        assert list(ul) == model
        assert len(ul) == len(model)


@given(
    writes=st.lists(
        st.tuples(
            st.sampled_from(["x", "y", "z"]),
            st.integers(min_value=1, max_value=9),
        ),
        max_size=40,
    )
)
@settings(max_examples=150, deadline=None)
def test_versioned_store_matches_model(writes):
    store = VersionedStore()
    model = {}  # key -> (value, version, time)
    applied = []
    stale = 0
    clock = 0.0
    for key, version in writes:
        clock += 1.0
        value = f"{key}-v{version}"
        expect_apply = version > model.get(key, (None, 0, 0.0))[1]
        assert store.apply(key, value, version, clock) == expect_apply
        if expect_apply:
            model[key] = (value, version, clock)
            applied.append((key, version, clock))
        else:
            stale += 1
        assert store.version_of(key) == model.get(key, (None, 0, 0.0))[1]
    assert store.version_vector() == {
        key: version for key, (_v, version, _t) in model.items()
    }
    assert store.keys() == sorted(model)
    assert store.applied_log == applied
    assert store.stale_rejections == stale
    assert len(store) == len(model)
    for key, (value, version, when) in model.items():
        versioned = store.read(key)
        assert (versioned.value, versioned.version, versioned.updated_at) \
            == (value, version, when)
    snapshot = store.snapshot()
    assert {
        key: (vv.value, vv.version, vv.updated_at)
        for key, vv in snapshot.items()
    } == model
    assert store.read("never-written") is None
    assert store.last_update_time("never-written") == float("-inf")


# -- the adversary JSON boundary --------------------------------------------


def test_schedule_json_round_trip_reaches_identical_outcomes():
    """A corpus schedule re-serialised through JSON drives the packed
    kernel to byte-identical outcomes (interning never leaks into the
    replay format)."""
    import pathlib

    from repro.core.machines import Schedule, check_schedule

    corpus = sorted(
        (pathlib.Path(__file__).parent / "corpus").glob("*.json")
    )
    assert corpus
    for path in corpus[:3]:
        schedule = Schedule.load(str(path))
        reloaded = Schedule.from_json(schedule.to_json())
        first = check_schedule(schedule)
        second = check_schedule(reloaded)
        assert first.statuses == second.statuses
        assert first.chains == second.chains
        assert first.events == second.events
