"""Unit tests for the harness's fault-injection primitives.

The schedule adversary leans on these behaviors being exact; each one
is pinned here in isolation: partitions buffer (never lose) messages
until heal, drop directives only touch retryable kinds, duplicates and
delays act on the deterministic send index, killed agents vanish but
leave their lock entries behind, atomic restarts resync before the
replica answers anything, and a livelocked run raises instead of
silently passing.
"""

import pytest

from repro.agents.identity import AgentId
from repro.core.machines import (
    DROPPABLE_KINDS,
    EventBudgetExceeded,
    KernelHarness,
    ProtocolTunables,
)

HOSTS = ["s1", "s2", "s3"]


class RecordingHarness(KernelHarness):
    """Harness that logs every message handed to the network.

    Because the harness is deterministic, one recorded run is enough to
    learn the global send index of any message of interest; a second
    run can then aim drop/duplicate/delay directives at it exactly.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.sends = []  # (index, kind, src, dst)

    def _deliver_later(self, dst, kind, payload, src):
        self.sends.append((self.msg_index, kind, src, dst))
        super()._deliver_later(dst, kind, payload, src)


def run_one_update(harness_cls=KernelHarness, **kwargs):
    harness = harness_cls(HOSTS, **kwargs)
    harness.submit("s1", 1, "x", "v1", at=0.0)
    return harness


class TestPartition:
    def test_partition_buffers_and_heal_delivers(self):
        harness = run_one_update()
        # Cut the lone writer's side off from s3 for the whole claim.
        harness.set_partition([["s1", "s2"], ["s3"]], at=0.0)
        harness.run(until=5_000)
        # The round resolves on the majority side; s3 saw nothing.
        assert harness.statuses() == {1: "committed"}
        assert len(harness.replicas["s3"].history) == 0
        assert harness._partition_buffer  # COMMIT (at least) is waiting
        harness.heal_partition()
        harness.run(until=10_000)
        assert len(harness.replicas["s3"].history) == 1
        assert harness.replicas["s3"].read("x").value == "v1"

    def test_unknown_host_rejected(self):
        harness = KernelHarness(HOSTS)
        with pytest.raises(ValueError):
            harness.set_partition([["s1", "nope"]])

    def test_unnamed_hosts_are_isolated(self):
        harness = KernelHarness(HOSTS)
        harness.set_partition([["s1", "s2"]])
        assert harness._reachable("s1", "s2")
        assert not harness._reachable("s1", "s3")
        assert not harness._reachable("s2", "s3")
        assert harness._reachable("s3", "s3")

    def test_migration_across_cut_reads_as_replica_down(self):
        harness = KernelHarness(HOSTS)
        harness.set_partition([["s1"], ["s2", "s3"]], at=0.0)
        harness.submit("s1", 1, "x", "v1", at=1.0)
        harness.heal_partition(at=200.0)
        harness.run(until=10_000)
        # The agent could not tour a majority until the heal, then
        # completed normally — no update was lost to the partition.
        assert harness.statuses() == {1: "committed"}


class TestMessageDirectives:
    def test_drop_only_touches_droppable_kinds(self):
        probe = run_one_update(RecordingHarness)
        probe.run(until=10_000)
        kinds = {kind for _i, kind, _s, _d in probe.sends}
        assert "COMMIT" in kinds and "UPDATE" in kinds

        # Blanket-drop directives: only retryable kinds may be lost.
        # Dropped claim rounds read as silence, and silence is retried
        # forever (a timeout is not a conflict, so it never burns a
        # claim attempt) — the update neither resolves nor diverges.
        harness = run_one_update()
        for nth in range(len(probe.sends) * 40):
            harness.drop_message(nth)
        harness.run(until=20_000)
        assert harness.dropped
        assert all(
            kind in DROPPABLE_KINDS for _t, _s, _d, kind in harness.dropped
        )
        assert harness.statuses() == {}
        assert harness.commit_chains() == {}

    def test_finite_drops_are_retried_through(self):
        # A drop set that blankets the first claim round but nothing
        # after it: the ack-timeout retry goes through and commits.
        probe = run_one_update(RecordingHarness)
        probe.run(until=10_000)
        harness = run_one_update()
        for nth in range(len(probe.sends)):
            harness.drop_message(nth)
        harness.run(until=100_000)
        assert harness.statuses() == {1: "committed"}

    def test_dropped_ack_is_retried_and_still_commits(self):
        probe = run_one_update(RecordingHarness)
        probe.run(until=10_000)
        first_ack = next(i for i, k, _s, _d in probe.sends if k == "ACK")
        harness = run_one_update()
        harness.drop_message(first_ack)
        harness.run(until=100_000)
        assert harness.statuses() == {1: "committed"}
        assert [(s, d, k) for _t, s, d, k in harness.dropped] == [
            (probe.sends[first_ack][2], probe.sends[first_ack][3], "ACK")
        ]

    def test_duplicate_commit_applies_once(self):
        probe = run_one_update(RecordingHarness)
        probe.run(until=10_000)
        commits = [i for i, k, _s, _d in probe.sends if k == "COMMIT"]
        harness = run_one_update()
        for nth in commits:
            harness.duplicate_message(nth, extra_delay=7.0)
        harness.run(until=10_000)
        assert harness.statuses() == {1: "committed"}
        for host in HOSTS:
            assert len(harness.replicas[host].history) == 1

    def test_delay_shifts_delivery(self):
        probe = run_one_update(RecordingHarness)
        probe.run(until=10_000)
        index, _kind, _src, dst = next(
            (i, k, s, d) for i, k, s, d in probe.sends if k == "COMMIT"
        )
        harness = run_one_update()
        harness.delay_message(index, by=13.0)
        harness.run(until=10_000)
        assert harness.statuses() == {1: "committed"}
        # The delayed replica applied the same commit, 13 time units
        # after its peers.
        times = {
            host: harness.replicas[host].history.records()[0].committed_at
            for host in HOSTS
        }
        others = [t for host, t in times.items() if host != dst]
        assert times[dst] == pytest.approx(others[0] + 13.0)

    def test_runs_identical_without_directives(self):
        plain = run_one_update()
        plain.run(until=10_000)
        recorded = run_one_update(RecordingHarness)
        recorded.run(until=10_000)
        assert plain.commit_chains() == recorded.commit_chains()
        assert plain.now == recorded.now


class TestKill:
    def test_killed_agent_vanishes_but_entries_remain(self):
        harness = KernelHarness(HOSTS)
        victim = harness.submit("s1", 1, "x", "v1", at=0.0)
        # Let it arrive and enqueue its lock request, then vanish.
        harness.run(until=0.5)
        harness.kill(victim)
        assert victim in harness.killed
        assert victim not in harness.agents
        assert victim in harness.replicas["s1"].locking_list
        harness.run(until=10_000)
        # Nobody commits on the dead agent's behalf.
        assert harness.statuses() == {}
        assert harness.commit_chains() == {}

    def test_killed_rival_wedges_survivor_behind_phantom_entry(self):
        # The victim dies mid-claim. Grant TTLs free the *grants*, but
        # the victim's LockingList entries stay, so a later agent keeps
        # ranking behind a phantom and parks forever. This is the real
        # protocol behaviour — the paper delegates agent fault
        # tolerance to the platform — and exactly why the adversary
        # exempts kill schedules from the liveness check while still
        # holding them to safety.
        harness = KernelHarness(
            HOSTS, tunables=ProtocolTunables(grant_ttl=50.0)
        )
        victim = harness.submit("s1", 1, "x", "dead", at=0.0)
        # t=2: the UPDATE round is under way and every replica holds a
        # grant for the victim; the COMMIT broadcast would fire at t=3.
        harness.run(until=2.5)
        harness.kill(victim)
        survivor = harness.submit("s2", 2, "x", "alive", at=10.0)
        harness.run(until=100_000)
        # Wedged, not diverged: no resolution, but nothing committed
        # under the dead agent's name either.
        assert harness.statuses() == {}
        assert harness.commit_chains() == {}
        assert harness.agents[survivor].status is None

    def test_kill_unknown_agent_is_a_noop(self):
        harness = KernelHarness(HOSTS)
        harness.kill(AgentId("s9", 0.0, 42))
        assert harness.killed == set()


class TestAtomicRestart:
    def test_atomic_restart_resyncs_before_answering(self):
        harness = KernelHarness(HOSTS)
        harness.submit("s1", 1, "x", "v1", at=0.0)
        harness.crash("s3", at=0.5)
        harness.run(until=5_000)
        assert harness.statuses() == {1: "committed"}
        assert len(harness.replicas["s3"].history) == 0
        harness.restart("s3", atomic=True)
        # No further events needed: the resync happened synchronously.
        # The store and updated-list transfer; the history log is each
        # replica's own append-only record (commit-chain completeness
        # comes from the union over live replicas).
        assert harness.replicas["s3"].read("x").value == "v1"
        assert len(harness.replicas["s3"].history) == 0

    def test_atomic_restart_without_live_peer_keeps_durable_state(self):
        harness = KernelHarness(HOSTS)
        for host in HOSTS:
            harness.crash(host)
        harness.restart("s1", atomic=True)
        assert "s1" not in harness.down
        assert len(harness.replicas["s1"].history) == 0


class TestEventBudget:
    def test_budget_exhaustion_raises(self):
        harness = KernelHarness(HOSTS)
        harness.submit("s1", 1, "x", "v1", at=0.0)
        with pytest.raises(EventBudgetExceeded) as exc_info:
            harness.run(until=10_000, max_events=3)
        assert exc_info.value.max_events == 3
        assert exc_info.value.pending > 0
        assert "livelock" in str(exc_info.value)

    def test_budget_not_hit_on_normal_run(self):
        harness = KernelHarness(HOSTS)
        harness.submit("s1", 1, "x", "v1", at=0.0)
        harness.run(until=10_000)
        assert harness.statuses() == {1: "committed"}
        assert harness.events_processed > 0
