"""Script-replay tests of protocol edge cases.

These interleavings are hard (or impossible) to reach deterministically
through either execution backend; because the machines are sans-IO, each
one can be written down as a literal input script and asserted on
exactly — the tentpole payoff of the kernel refactor.

Covered here:

* a server-side grant expiring (TTL) in the middle of a claim round;
* a COMMIT overtaking its own UPDATE on a reordered channel, and the
  agent-side mirror (an ACK straggling in after the round resolved);
* a park-timeout wakeup racing the lock-release notification;
* the paper's M-way identifier tie-break guard ``S + (N − M·S) < ⌈(N+1)/2⌉``;
* a duplicated COMMIT landing after its target crashed, resynced and
  rejoined (schedule-DSL expressible since the adversary);
* a partition heal delivering a buffered COMMIT *after* the grant that
  certified it expired on the far side.
"""

from repro.agents.identity import AgentId
from repro.core.machines import (
    AgentCoreState,
    AgentMachine,
    Broadcast,
    CommitApplied,
    Dispose,
    Granted,
    KernelHarness,
    LockingTable,
    MsgReceived,
    Nacked,
    ProtocolTunables,
    ReplicaMachine,
    SharedView,
    UpdatePayload,
    WriteOp,
    decide,
)
from repro.core.machines.priority import STALEMATE

HOSTS = ["s1", "s2", "s3"]


def update_msg(agent_id, batch_id, epoch, now, writes=(), reply_to="client"):
    payload = UpdatePayload(
        batch_id=batch_id,
        agent_id=agent_id,
        origin=agent_id.host,
        writes=tuple(writes),
        reply_to=reply_to,
        epoch=epoch,
    )
    return MsgReceived("UPDATE", payload, now)


def commit_msg(agent_id, batch_id, now, writes):
    payload = UpdatePayload(
        batch_id=batch_id,
        agent_id=agent_id,
        origin=agent_id.host,
        writes=tuple(writes),
        epoch=0,
    )
    return MsgReceived("COMMIT", payload, now)


class TestGrantTTLExpiryDuringClaim:
    """A claimer that stalls mid-claim must not wedge the server."""

    def setup_method(self):
        self.replica = ReplicaMachine(
            "s1", HOSTS, ProtocolTunables(grant_ttl=50.0)
        )
        self.a = AgentId("s2", 1.0, 0)
        self.b = AgentId("s3", 2.0, 0)

    def test_expired_grant_is_reassigned(self):
        effects = self.replica.on(update_msg(self.a, 1, 1, now=0.0))
        assert isinstance(effects[0], Granted)

        # Within the TTL the grant is exclusive: B is NACKed.
        effects = self.replica.on(update_msg(self.b, 2, 1, now=10.0))
        assert isinstance(effects[0], Nacked)
        assert self.replica.grant_holder == self.a

        # Past the TTL, A's (presumably dead) claim no longer blocks B.
        effects = self.replica.on(update_msg(self.b, 2, 1, now=61.0))
        assert isinstance(effects[0], Granted)
        assert self.replica.grant_holder == self.b

    def test_stale_release_cannot_evict_the_new_holder(self):
        self.replica.on(update_msg(self.a, 1, 1, now=0.0))
        self.replica.on(update_msg(self.b, 2, 1, now=61.0))
        release = UpdatePayload(
            batch_id=1, agent_id=self.a, origin=self.a.host, epoch=1
        )
        assert self.replica.on(MsgReceived("RELEASE", release, 62.0)) == []
        assert self.replica.grant_holder == self.b

    def test_late_commit_after_expiry_still_applies(self):
        # A's round actually *succeeded* elsewhere: its COMMIT must apply
        # even though this server re-granted, and must not evict B.
        self.replica.on(update_msg(self.a, 1, 1, now=0.0))
        self.replica.on(update_msg(self.b, 2, 1, now=61.0))
        writes = (WriteOp(request_id=1, key="x", value="av", version=1),)
        effects = self.replica.on(commit_msg(self.a, 1, 70.0, writes))
        assert any(isinstance(e, CommitApplied) for e in effects)
        assert self.replica.read("x").value == "av"
        assert self.replica.grant_holder == self.b


class TestCommitOvertakesAckRound:
    """COMMIT arriving before its UPDATE (or after the round resolved)."""

    def test_commit_without_prior_update_is_self_contained(self):
        replica = ReplicaMachine("s1", HOSTS, ProtocolTunables())
        a = AgentId("s2", 1.0, 0)
        writes = (WriteOp(request_id=7, key="x", value="v", version=1),)
        effects = replica.on(commit_msg(a, 7, 5.0, writes))
        assert any(isinstance(e, CommitApplied) for e in effects)
        assert replica.read("x").value == "v"
        assert a in replica.updated_list

        # The overtaken UPDATE straggles in afterwards. The server still
        # answers; its ACK's version vector already includes the commit,
        # which is exactly the [D3] version ceiling a later winner needs.
        effects = replica.on(update_msg(a, 7, 1, now=6.0))
        ack = effects[1]
        assert ack.kind == "ACK"
        assert ack.payload["versions"] == {"x": 1}

    def test_duplicate_commit_is_idempotent(self):
        replica = ReplicaMachine("s1", HOSTS, ProtocolTunables())
        a = AgentId("s2", 1.0, 0)
        writes = (WriteOp(request_id=7, key="x", value="v", version=1),)
        replica.on(commit_msg(a, 7, 5.0, writes))
        effects = replica.on(commit_msg(a, 7, 6.0, writes))
        assert not any(isinstance(e, CommitApplied) for e in effects)
        assert len(replica.history) == 1
        assert replica.commits_applied == 1

    def test_agent_ignores_acks_after_round_resolved(self):
        hosts = ["s1", "s2", "s3", "s4", "s5"]
        state = AgentCoreState(
            agent_id=AgentId("s1", 1.0, 0),
            home="s1",
            batch_id=1,
            requests=[(1, "x", "v")],
            location="s1",
        )
        machine = AgentMachine(state, hosts, ProtocolTunables())
        machine.start_claim(now=0.0)

        def ack(host):
            return {"batch_id": 1, "epoch": 1, "from": host, "versions": {}}

        assert machine.on_message("ACK", ack("s1"), now=1.0) == []
        assert machine.on_message("ACK", ack("s2"), now=1.0) == []
        # Third ACK is the majority of five: the round resolves.
        effects = machine.on_message("ACK", ack("s3"), now=1.0)
        assert any(
            isinstance(e, Broadcast) and e.kind == "COMMIT" for e in effects
        )
        assert any(isinstance(e, Dispose) for e in effects)
        # Stragglers from the still-unfinished round change nothing.
        assert machine.on_message("ACK", ack("s4"), now=2.0) == []
        assert machine.on_message("NACK", ack("s5"), now=2.0) == []


class TestParkWakeRacesRelease:
    """A park timeout firing around the release notification must not
    double-wake the agent or duplicate its visit/claim."""

    def run_contended(self):
        harness = KernelHarness(
            HOSTS,
            # Park timeout of exactly two hops: the loser's timer fires in
            # the same window the winner's COMMIT triggers ReleaseNotify.
            tunables=ProtocolTunables(park_timeout=2.0, claim_backoff=1.0),
        )
        harness.submit("s1", 1, "x", "first", at=0.0)
        harness.submit("s2", 2, "x", "second", at=0.0)
        harness.run(until=10_000)
        return harness

    def test_both_agents_commit_exactly_once(self):
        harness = self.run_contended()
        assert harness.statuses() == {1: "committed", 2: "committed"}
        chains = harness.commit_chains()
        assert [v for v, _ in chains["x"]] == [1, 2]
        assert sorted(val for _, val in chains["x"]) == ["first", "second"]

    def test_race_is_deterministic(self):
        first, second = self.run_contended(), self.run_contended()
        assert first.commit_chains() == second.commit_chains()
        assert {
            aid: run.notes for aid, run in first.agents.items()
        } == {aid: run.notes for aid, run in second.agents.items()}


class TestMWayTieBreak:
    """Paper rule 2: M agents tied at S tops each with
    ``S + (N − M·S) < ⌈(N+1)/2⌉`` can never reach a majority — resolve by
    identifier immediately."""

    def three_way_table(self):
        agents = [AgentId(h, 0.0, 0) for h in HOSTS]
        table = LockingTable()
        for host, agent in zip(HOSTS, agents):
            table.update(SharedView(
                host=host, as_of=1.0, view=(agent,),
                updated=frozenset(), versions={},
            ))
        return table, agents

    def test_three_way_split_is_a_paper_stalemate(self):
        # N=3, M=3, S=1: 1 + (3 − 3·1) = 1 < 2.
        table, agents = self.three_way_table()
        decision = decide(table, 3, agents[0])
        assert decision.outcome == STALEMATE
        assert decision.reason == "paper-tie-break"
        assert decision.winner == min(agents)

    def test_every_agent_agrees_on_the_designee(self):
        table, agents = self.three_way_table()
        winners = {decide(table, 3, a).winner for a in agents}
        assert winners == {min(agents)}

    def test_guard_boundary_falls_through_to_complete_info(self):
        # N=5, M=2, S=2: 2 + (5 − 2·2) = 3 >= 3, so rule 2 must NOT fire;
        # with all five views known and non-empty, rule 3 resolves it.
        hosts = ["s1", "s2", "s3", "s4", "s5"]
        a, b, c = (AgentId(h, 0.0, 0) for h in ("s1", "s2", "s3"))
        tops = {"s1": a, "s2": a, "s3": b, "s4": b, "s5": c}
        table = LockingTable()
        for host, top in tops.items():
            table.update(SharedView(
                host=host, as_of=1.0, view=(top,),
                updated=frozenset(), versions={},
            ))
        decision = decide(table, 5, a)
        assert decision.outcome == STALEMATE
        assert decision.reason == "complete-info"
        assert decision.winner == min((a, b))

    def test_harness_resolves_three_way_contention(self):
        harness = KernelHarness(HOSTS)
        ids = [
            harness.submit(host, n, "x", f"v-{host}", at=0.0)
            for n, host in enumerate(HOSTS, start=1)
        ]
        harness.run(until=100_000)
        assert set(harness.statuses().values()) == {"committed"}
        chains = harness.commit_chains()
        assert [v for v, _ in chains["x"]] == [1, 2, 3]
        # The identifier tie-break designates the smallest id: it claims
        # first and therefore takes version 1.
        assert chains["x"][0] == (1, f"v-{min(ids).host}")


class TestDuplicateCommitAfterRestart:
    """A COMMIT whose target crashed, and whose duplicate then lands on
    the restarted (already resynced) replica, must be a no-op.

    Written in the adversary schedule DSL: the single agent's COMMIT to
    ``s3`` is global message 8 (the harness send index is deterministic,
    see ``test_harness_faults.RecordingHarness``), sent at t=3. The
    first delivery dies with the crash at t=3.5; the duplicate arrives
    at t=24 against a replica that atomically resynced at t=10.
    """

    def schedule(self):
        from repro.core.machines import (
            CrashOp,
            DuplicateOp,
            RestartOp,
            Schedule,
            SubmitOp,
        )

        return Schedule(
            n_hosts=3,
            submits=(
                SubmitOp(home="s1", request_id=1, key="x", value="v1"),
            ),
            ops=(
                DuplicateOp(nth=8, extra_delay=20.0),
                CrashOp(host="s3", at=3.5),
                RestartOp(host="s3", at=10.0),
            ),
        )

    def test_duplicate_is_idempotent_against_synced_state(self):
        from repro.core.machines import check_schedule, run_schedule

        harness, _ids = run_schedule(self.schedule())
        assert harness.statuses() == {1: "committed"}
        replica = harness.replicas["s3"]
        # The value came in through the atomic resync; the straggling
        # duplicate COMMIT found version 1 already present and applied
        # nothing.
        assert replica.read("x").value == "v1"
        assert replica.commits_applied == 0
        assert len(replica.history) == 0
        # And the run as a whole upholds both invariants.
        check_schedule(self.schedule())


class TestPartitionHealRacesGrantExpiry:
    """A buffered COMMIT crossing a heal after its grant expired.

    Agent A is granted everywhere at t=2 (TTL 30 → s3's grant dies at
    t=32); the partition at t=2.5 buffers A's COMMIT to ``s3``; B, born
    on the minority side, cannot tour a majority until the heal at
    t=35. The heal then delivers A's COMMIT to a server whose grant for
    A is already gone, while B's claim races in behind it — the [D3]
    version ceiling (B's ACK quorum includes the committed majority)
    must serialize B at version 2 regardless of how the race lands.
    """

    def schedule(self):
        from repro.core.machines import (
            HealOp,
            PartitionOp,
            Schedule,
            SubmitOp,
        )

        return Schedule(
            n_hosts=3,
            tunables={"grant_ttl": 30.0},
            submits=(
                SubmitOp(home="s1", request_id=1, key="x", value="a"),
                SubmitOp(home="s3", request_id=2, key="x", value="b",
                         at=4.0),
            ),
            ops=(
                PartitionOp(groups=(("s1", "s2"), ("s3",)), at=2.5),
                HealOp(at=35.0),
            ),
        )

    def test_ceiling_serializes_across_the_heal(self):
        from repro.core.machines import check_schedule, run_schedule

        harness, _ids = run_schedule(self.schedule())
        assert harness.statuses() == {1: "committed", 2: "committed"}
        assert harness.commit_chains() == {"x": [(1, "a"), (2, "b")]}
        # s3 applied A's buffered COMMIT only after the heal — i.e.
        # after its own grant for A had expired — and B's immediately
        # behind it, in ceiling order.
        applied = [
            (r.version, r.value)
            for r in harness.replicas["s3"].history
        ]
        assert applied == [(1, "a"), (2, "b")]
        assert all(
            r.committed_at > 35.0
            for r in harness.replicas["s3"].history
        )
        check_schedule(self.schedule())
