"""Unit tests for fault injection primitives."""

import pytest

from repro.errors import NetworkError
from repro.net.faults import CrashSchedule, FaultPlan, TransientLinkFaults
from repro.sim.rng import RandomStreams


@pytest.fixture
def stream():
    return RandomStreams(9).stream("faults")


class TestCrashSchedule:
    def test_up_by_default(self):
        schedule = CrashSchedule()
        assert schedule.is_up("s1", 100.0)

    def test_down_during_window(self):
        schedule = CrashSchedule().add("s1", 10, 20)
        assert schedule.is_up("s1", 9.99)
        assert not schedule.is_up("s1", 10)
        assert not schedule.is_up("s1", 19.99)
        assert schedule.is_up("s1", 20)

    def test_multiple_windows(self):
        schedule = CrashSchedule().add("s1", 10, 20).add("s1", 30, 40)
        assert schedule.is_up("s1", 25)
        assert not schedule.is_up("s1", 35)

    def test_overlapping_windows_rejected(self):
        schedule = CrashSchedule().add("s1", 10, 20)
        with pytest.raises(NetworkError):
            schedule.add("s1", 15, 25)

    def test_invalid_window_rejected(self):
        with pytest.raises(NetworkError):
            CrashSchedule().add("s1", 20, 10)
        with pytest.raises(NetworkError):
            CrashSchedule().add("s1", -5, 10)

    def test_next_recovery(self):
        schedule = CrashSchedule().add("s1", 10, 20)
        assert schedule.next_recovery("s1", 15) == 20
        assert schedule.next_recovery("s1", 25) is None
        assert schedule.next_recovery("other", 15) is None

    def test_windows_accessor(self):
        schedule = CrashSchedule().add("s1", 30, 40).add("s1", 10, 20)
        assert schedule.windows("s1") == [(10, 20), (30, 40)]
        assert schedule.windows("unknown") == []

    def test_hosts_with_faults(self):
        schedule = CrashSchedule().add("b", 1, 2).add("a", 1, 2)
        assert schedule.hosts_with_faults() == ["a", "b"]


class TestTransientLinkFaults:
    def test_no_faults_by_default(self, stream):
        faults = TransientLinkFaults()
        assert not faults.transmission_fails("a", "b", 0.0, stream)

    def test_drop_probability_validated(self):
        with pytest.raises(NetworkError):
            TransientLinkFaults(drop_probability=1.0)
        with pytest.raises(NetworkError):
            TransientLinkFaults(drop_probability=-0.1)

    def test_drop_probability_applies(self, stream):
        faults = TransientLinkFaults(drop_probability=0.5)
        outcomes = [
            faults.transmission_fails("a", "b", 0.0, stream)
            for _ in range(500)
        ]
        drop_rate = sum(outcomes) / len(outcomes)
        assert 0.4 < drop_rate < 0.6

    def test_outage_window_bidirectional(self, stream):
        faults = TransientLinkFaults().add_outage("a", "b", 10, 20)
        assert faults.transmission_fails("a", "b", 15, stream)
        assert faults.transmission_fails("b", "a", 15, stream)
        assert not faults.transmission_fails("a", "b", 25, stream)

    def test_invalid_outage(self):
        with pytest.raises(NetworkError):
            TransientLinkFaults().add_outage("a", "b", 20, 10)


class TestFaultPlan:
    def test_none_plan_has_no_faults(self, stream):
        plan = FaultPlan.none()
        assert plan.host_up("x", 1e9)
        assert not plan.transmission_fails("a", "b", 0.0, stream)

    def test_combines_crashes_and_links(self, stream):
        plan = FaultPlan(
            crashes=CrashSchedule().add("s1", 0, 10),
            links=TransientLinkFaults().add_outage("a", "b", 5, 6),
        )
        assert not plan.host_up("s1", 5)
        assert plan.host_up("s1", 11)
        assert plan.transmission_fails("a", "b", 5.5, stream)
