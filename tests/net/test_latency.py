"""Unit tests for the latency models."""

import pytest

from repro.errors import NetworkError
from repro.net.latency import (
    BandwidthLatency,
    ConstantLatency,
    EmpiricalLatency,
    ExponentialLatency,
    LogNormalLatency,
    PairwiseLatency,
    RegionalLatency,
    ScaledLatency,
    UniformLatency,
    _hybrid_region,
    hybrid_profile,
    lan_profile,
    wan_profile,
)
from repro.sim.rng import RandomStreams


@pytest.fixture
def stream():
    return RandomStreams(1).stream("latency-tests")


class TestModels:
    def test_constant(self, stream):
        model = ConstantLatency(5.0)
        assert model.sample("a", "b", 100, stream) == 5.0

    def test_constant_negative_rejected(self):
        with pytest.raises(NetworkError):
            ConstantLatency(-1)

    def test_uniform_in_range(self, stream):
        model = UniformLatency(1.0, 3.0)
        for _ in range(100):
            assert 1.0 <= model.sample("a", "b", 0, stream) <= 3.0

    def test_uniform_invalid_range(self):
        with pytest.raises(NetworkError):
            UniformLatency(3.0, 1.0)

    def test_exponential_above_minimum(self, stream):
        model = ExponentialLatency(mean=2.0, minimum=1.0)
        for _ in range(100):
            assert model.sample("a", "b", 0, stream) >= 1.0

    def test_exponential_invalid(self):
        with pytest.raises(NetworkError):
            ExponentialLatency(mean=-1)

    def test_lognormal_positive(self, stream):
        model = LogNormalLatency(median=40.0, sigma=0.5, minimum=5.0)
        for _ in range(100):
            assert model.sample("a", "b", 0, stream) >= 5.0

    def test_lognormal_invalid(self):
        with pytest.raises(NetworkError):
            LogNormalLatency(median=0)

    def test_bandwidth_scales_with_size(self, stream):
        model = BandwidthLatency(100.0)  # 100 B/ms
        assert model.sample("a", "b", 1000, stream) == 10.0
        assert model.sample("a", "b", 0, stream) == 0.0

    def test_bandwidth_invalid(self):
        with pytest.raises(NetworkError):
            BandwidthLatency(0)


class TestEmpirical:
    def test_samples_only_from_trace(self, stream):
        model = EmpiricalLatency([5.0, 10.0, 15.0])
        draws = {model.sample("a", "b", 0, stream) for _ in range(200)}
        assert draws == {5.0, 10.0, 15.0}

    def test_distribution_reproduced(self, stream):
        # heavily skewed trace: 90% fast, 10% slow
        trace = [1.0] * 90 + [100.0] * 10
        model = EmpiricalLatency(trace)
        draws = [model.sample("a", "b", 0, stream) for _ in range(2000)]
        slow_rate = sum(1 for d in draws if d == 100.0) / len(draws)
        assert 0.05 < slow_rate < 0.15

    def test_empty_trace_rejected(self):
        with pytest.raises(NetworkError):
            EmpiricalLatency([])

    def test_invalid_samples_rejected(self):
        with pytest.raises(NetworkError):
            EmpiricalLatency([1.0, -2.0])
        with pytest.raises(NetworkError):
            EmpiricalLatency([float("nan")])


class TestComposition:
    def test_sum_adds_components(self, stream):
        model = ConstantLatency(2.0) + BandwidthLatency(10.0)
        assert model.sample("a", "b", 100, stream) == 2.0 + 10.0

    def test_scaled_multiplies(self, stream):
        model = ScaledLatency(ConstantLatency(4.0), lambda s, d: 2.5)
        assert model.sample("a", "b", 0, stream) == 10.0

    def test_pairwise_override(self, stream):
        model = PairwiseLatency(ConstantLatency(1.0))
        model.set("a", "b", ConstantLatency(9.0))
        assert model.sample("a", "b", 0, stream) == 9.0
        assert model.sample("b", "a", 0, stream) == 1.0

    def test_regional_routes_by_region_equality(self, stream):
        model = RegionalLatency(
            lambda host: host[0],
            intra=ConstantLatency(1.0),
            inter=ConstantLatency(50.0),
        )
        assert model.sample("a1", "a2", 0, stream) == 1.0
        assert model.sample("a1", "b1", 0, stream) == 50.0


class TestProfiles:
    def test_lan_profile_small_delays(self, stream):
        model = lan_profile()
        draws = [model.sample("a", "b", 2048, stream) for _ in range(200)]
        assert all(1.0 <= d <= 3.5 for d in draws)

    def test_wan_profile_much_slower_than_lan(self, stream):
        lan = lan_profile()
        wan = wan_profile()
        lan_mean = sum(lan.sample("a", "b", 256, stream) for _ in range(300)) / 300
        wan_mean = sum(wan.sample("a", "b", 256, stream) for _ in range(300)) / 300
        assert wan_mean > 5 * lan_mean

    def test_wan_profile_has_minimum(self, stream):
        wan = wan_profile()
        assert all(wan.sample("a", "b", 0, stream) >= 5.0 for _ in range(100))

    def test_hybrid_region_split_is_deterministic_round_robin(self):
        regions = {_hybrid_region(f"s{i}") for i in range(1, 10)}
        assert len(regions) == 3  # all regions populated
        assert _hybrid_region("s1") == _hybrid_region("s4")
        assert _hybrid_region("no-digits") == _hybrid_region("no-digits")

    def test_hybrid_profile_is_lan_within_and_wan_across(self, stream):
        model = hybrid_profile()
        # s3/s6 share a region, s3/s4 do not.
        intra = [model.sample("s3", "s6", 256, stream) for _ in range(300)]
        inter = [model.sample("s3", "s4", 256, stream) for _ in range(300)]
        assert all(d <= 4.0 for d in intra)
        assert all(d >= 5.0 for d in inter)
        assert sum(inter) / 300 > 5 * (sum(intra) / 300)
