"""Unit tests for message size accounting."""

from dataclasses import dataclass

from repro.net.message import HEADER_BYTES, Message, estimate_size


class TestEstimateSize:
    def test_none_is_zero(self):
        assert estimate_size(None) == 0

    def test_bool_is_one(self):
        assert estimate_size(True) == 1

    def test_numbers_are_eight(self):
        assert estimate_size(7) == 8
        assert estimate_size(3.14) == 8

    def test_string_utf8_length(self):
        assert estimate_size("abc") == 3
        assert estimate_size("é") == 2

    def test_bytes_length(self):
        assert estimate_size(b"\x00" * 10) == 10

    def test_dict_recursive(self):
        assert estimate_size({"a": 1}) == 16 + 1 + 8

    def test_list_recursive(self):
        assert estimate_size([1, 2]) == 16 + 16

    def test_wire_size_hook_preferred(self):
        class Sized:
            def wire_size(self):
                return 12345

        assert estimate_size(Sized()) == 12345

    def test_object_with_dict_counts_public_attrs(self):
        @dataclass
        class Payload:
            value: int
            _private: int = 0

        assert estimate_size(Payload(value=1)) == 16 + 8

    def test_opaque_object_fallback(self):
        class Slotless:
            __slots__ = ()

        assert estimate_size(Slotless()) == 16


class TestMessage:
    def test_size_defaults_to_header_plus_payload(self):
        msg = Message(src="a", dst="b", kind="PING", payload="xy")
        assert msg.size_bytes == HEADER_BYTES + 2

    def test_explicit_size_kept(self):
        msg = Message(src="a", dst="b", kind="PING", size_bytes=512)
        assert msg.size_bytes == 512

    def test_ids_are_unique_and_increasing(self):
        first = Message(src="a", dst="b", kind="X")
        second = Message(src="a", dst="b", kind="X")
        assert second.msg_id > first.msg_id

    def test_default_category(self):
        assert Message(src="a", dst="b", kind="X").category == "control"

    def test_repr_mentions_route(self):
        msg = Message(src="s1", dst="s2", kind="ACK")
        assert "s1->s2" in repr(msg)
