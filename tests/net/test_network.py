"""Unit tests for the asynchronous network."""

import pytest

from repro.errors import MigrationError, NetworkError
from repro.net.faults import CrashSchedule, FaultPlan, TransientLinkFaults
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.net.topology import Topology
from repro.sim.rng import RandomStreams


def make_network(env, hosts=("a", "b", "c"), latency=None, faults=None,
                 cost=1.0, scale_by_cost=True, fifo_links=False,
                 inbox_ttl=None):
    topo = Topology.full_mesh(list(hosts), cost=cost)
    network = Network(
        env,
        topo,
        latency=latency or ConstantLatency(2.0),
        faults=faults,
        streams=RandomStreams(0),
        scale_by_cost=scale_by_cost,
        fifo_links=fifo_links,
        inbox_ttl=inbox_ttl,
    )
    endpoints = {h: network.register(h) for h in hosts}
    return network, endpoints


class TestRegistration:
    def test_register_unknown_host_rejected(self, env):
        network, _ = make_network(env)
        with pytest.raises(NetworkError):
            network.register("zz")

    def test_double_register_rejected(self, env):
        network, _ = make_network(env)
        with pytest.raises(NetworkError):
            network.register("a")


class TestDelivery:
    def test_unicast_arrives_after_latency(self, env):
        _network, eps = make_network(env)

        def receiver(env):
            msg = yield eps["b"].receive()
            assert msg.payload == "hello"
            assert env.now == 2.0

        eps["a"].send("b", "PING", "hello")
        env.process(receiver(env))
        env.run()

    def test_latency_scaled_by_cost(self, env):
        _network, eps = make_network(env, cost=3.0)
        arrival = []

        def receiver(env):
            yield eps["b"].receive()
            arrival.append(env.now)

        eps["a"].send("b", "PING")
        env.process(receiver(env))
        env.run()
        assert arrival == [6.0]  # 2ms x cost 3

    def test_no_cost_scaling_when_disabled(self, env):
        _network, eps = make_network(env, cost=3.0, scale_by_cost=False)
        arrival = []

        def receiver(env):
            yield eps["b"].receive()
            arrival.append(env.now)

        eps["a"].send("b", "PING")
        env.process(receiver(env))
        env.run()
        assert arrival == [2.0]

    def test_self_send_is_instant(self, env):
        _network, eps = make_network(env)
        arrival = []

        def receiver(env):
            yield eps["a"].receive()
            arrival.append(env.now)

        eps["a"].send("a", "LOOP")
        env.process(receiver(env))
        env.run()
        assert arrival == [0.0]

    def test_unknown_destination_rejected(self, env):
        _network, eps = make_network(env)
        with pytest.raises(NetworkError):
            eps["a"].send("nowhere", "PING")

    def test_receive_filters_by_kind(self, env):
        _network, eps = make_network(env)
        got = []

        def receiver(env):
            msg = yield eps["b"].receive(kind="WANTED")
            got.append(msg.kind)

        eps["a"].send("b", "NOISE")
        eps["a"].send("b", "WANTED")
        env.process(receiver(env))
        env.run()
        assert got == ["WANTED"]
        assert eps["b"].pending == 1  # NOISE still queued

    def test_receive_filters_by_match(self, env):
        _network, eps = make_network(env)
        got = []

        def receiver(env):
            msg = yield eps["b"].receive(
                kind="ACK", match=lambda m: m.payload == 2
            )
            got.append(msg.payload)

        eps["a"].send("b", "ACK", 1)
        eps["a"].send("b", "ACK", 2)
        env.process(receiver(env))
        env.run()
        assert got == [2]

    def test_broadcast_excludes_self_by_default(self, env):
        _network, eps = make_network(env)
        sent = eps["a"].broadcast("HELLO")
        assert sorted(m.dst for m in sent) == ["b", "c"]

    def test_broadcast_include_self(self, env):
        _network, eps = make_network(env)
        sent = eps["a"].broadcast("HELLO", include_self=True)
        assert sorted(m.dst for m in sent) == ["a", "b", "c"]

    def test_multicast_targets(self, env):
        _network, eps = make_network(env)
        sent = eps["a"].multicast(["b", "c"], "X")
        assert sorted(m.dst for m in sent) == ["b", "c"]


class TestFaultsAndStats:
    def test_message_to_crashed_host_dropped(self, env):
        faults = FaultPlan(crashes=CrashSchedule().add("b", 0, 100))
        network, eps = make_network(env, faults=faults)
        eps["a"].send("b", "PING")
        env.run()
        assert eps["b"].pending == 0
        assert network.stats.total_dropped() == 1

    def test_crashed_sender_cannot_send(self, env):
        faults = FaultPlan(crashes=CrashSchedule().add("a", 0, 100))
        network, eps = make_network(env, faults=faults)
        eps["a"].send("b", "PING")
        env.run()
        assert eps["b"].pending == 0
        assert network.stats.total_dropped() == 1

    def test_link_outage_drops(self, env):
        faults = FaultPlan(
            links=TransientLinkFaults().add_outage("a", "b", 0, 10)
        )
        network, eps = make_network(env, faults=faults)
        eps["a"].send("b", "PING")
        env.run()
        assert eps["b"].pending == 0

    def test_stats_count_messages_and_bytes(self, env):
        network, eps = make_network(env)
        msg = eps["a"].send("b", "PING", "xx")
        env.run()
        assert network.stats.total_messages("control") == 1
        assert network.stats.total_bytes("control") == msg.size_bytes

    def test_host_up_queries_fault_plan(self, env):
        faults = FaultPlan(crashes=CrashSchedule().add("b", 5, 10))
        network, _ = make_network(env, faults=faults)
        assert network.host_up("b")
        env.timeout(6)
        env.run()
        assert not network.host_up("b")


class TestFifoLinks:
    @staticmethod
    def _send_and_collect(env, eps, count):
        received = []

        def receiver(env):
            for _ in range(count):
                msg = yield eps["b"].receive()
                received.append(msg.payload)

        for index in range(count):
            eps["a"].send("b", "SEQ", index)
        env.process(receiver(env))
        env.run()
        return received

    def test_default_links_can_reorder(self, env):
        from repro.net.latency import UniformLatency

        _network, eps = make_network(
            env, latency=UniformLatency(1.0, 50.0)
        )
        received = self._send_and_collect(env, eps, 30)
        assert sorted(received) == list(range(30))
        assert received != list(range(30))  # jitter reorders some pair

    def test_fifo_links_preserve_send_order(self, env):
        from repro.net.latency import UniformLatency

        _network, eps = make_network(
            env, latency=UniformLatency(1.0, 50.0), fifo_links=True
        )
        received = self._send_and_collect(env, eps, 30)
        assert received == list(range(30))

    def test_fifo_links_are_per_direction(self, env):
        _network, eps = make_network(env, fifo_links=True)
        arrivals = []

        def receiver(env, name):
            msg = yield eps[name].receive()
            arrivals.append((name, env.now, msg.payload))

        eps["a"].send("b", "X", "ab")
        eps["b"].send("a", "X", "ba")
        env.process(receiver(env, "b"))
        env.process(receiver(env, "a"))
        env.run()
        # opposite directions don't serialise against each other
        assert {t for _n, t, _p in arrivals} == {2.0}


class TestAttemptTransfer:
    def test_successful_transfer_takes_latency(self, env):
        network, _ = make_network(env)
        done = []

        def mover(env):
            yield from network.attempt_transfer("a", "b", 1000, timeout=50)
            done.append(env.now)

        env.process(mover(env))
        env.run()
        assert done == [2.0]

    def test_transfer_to_down_host_times_out(self, env):
        faults = FaultPlan(crashes=CrashSchedule().add("b", 0, 1000))
        network, _ = make_network(env, faults=faults)
        outcome = []

        def mover(env):
            try:
                yield from network.attempt_transfer("a", "b", 100, timeout=50)
            except MigrationError:
                outcome.append(env.now)

        env.process(mover(env))
        env.run()
        assert outcome == [50.0]  # full detection timeout elapses

    def test_transfer_slower_than_timeout_fails(self, env):
        network, _ = make_network(env, latency=ConstantLatency(100.0))
        outcome = []

        def mover(env):
            with pytest.raises(MigrationError):
                yield from network.attempt_transfer("a", "b", 0, timeout=10)
            outcome.append(env.now)

        env.process(mover(env))
        env.run()
        assert outcome == [10.0]

    def test_transfer_accounted_as_agent_traffic(self, env):
        network, _ = make_network(env)

        def mover(env):
            yield from network.attempt_transfer("a", "b", 2048, timeout=50)

        env.process(mover(env))
        env.run()
        assert network.stats.total_messages("agent") == 1
        assert network.stats.total_bytes("agent") == 2048


class TestInboxHygiene:
    """The opt-in inbox TTL: dead unclaimed messages (e.g. ACK/NACKs
    for an abandoned claim round) are reaped on later deliveries."""

    def test_invalid_ttl_rejected(self, env):
        with pytest.raises(NetworkError):
            make_network(env, inbox_ttl=0.0)
        with pytest.raises(NetworkError):
            make_network(env, inbox_ttl=-5.0)

    def test_default_keeps_unclaimed_messages_forever(self, env):
        _network, eps = make_network(env)

        def late(env):
            yield env.timeout(10_000.0)
            eps["a"].send("b", "PING")

        for index in range(40):
            eps["a"].send("b", "ACK", index)
        env.process(late(env))
        env.run()
        assert len(eps["b"].inbox.items) == 41  # historical semantics
        assert eps["b"].reaped == 0

    def test_stale_backlog_reaped_on_fresh_delivery(self, env):
        network, eps = make_network(env, inbox_ttl=100.0)

        def late(env):
            yield env.timeout(200.0)
            eps["a"].send("b", "PING")

        for index in range(40):
            eps["a"].send("b", "ACK", index)  # all sent at t=0
        env.process(late(env))
        env.run()
        # the t=200 delivery finds 40 messages older than the ttl
        assert eps["b"].reaped == 40
        assert [m.kind for m in eps["b"].inbox.items] == ["PING"]
        assert network.stats.expired == 40

    def test_small_backlogs_are_left_alone(self, env):
        """Below REAP_MIN_BACKLOG the scan cost is trivial, so even
        stale messages stay (cheaper than scanning tiny inboxes)."""
        _network, eps = make_network(env, inbox_ttl=100.0)

        def late(env):
            yield env.timeout(500.0)
            eps["a"].send("b", "PING")

        for index in range(10):
            eps["a"].send("b", "ACK", index)
        env.process(late(env))
        env.run()
        assert eps["b"].reaped == 0
        assert len(eps["b"].inbox.items) == 11

    def test_fresh_messages_survive_and_are_claimable(self, env):
        _network, eps = make_network(env, inbox_ttl=100.0)
        got = []

        def flood_then_claim(env):
            for index in range(40):
                eps["a"].send("b", "ACK", index)
            yield env.timeout(200.0)
            eps["a"].send("b", "DATA", "fresh")
            msg = yield eps["b"].receive(kind="DATA")
            got.append(msg.payload)

        env.process(flood_then_claim(env))
        env.run()
        assert got == ["fresh"]
        assert eps["b"].reaped == 40
