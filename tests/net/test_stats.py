"""Unit tests for network traffic accounting."""

from repro.net.stats import NetworkStats


class TestNetworkStats:
    def test_record_send_counts(self):
        stats = NetworkStats()
        stats.record_send("control", "ACK", 100)
        stats.record_send("control", "ACK", 50)
        stats.record_send("agent", "AGENT", 2048)
        assert stats.total_messages() == 3
        assert stats.total_messages("control") == 2
        assert stats.total_bytes("control") == 150
        assert stats.total_bytes("agent") == 2048

    def test_dropped_counter(self):
        stats = NetworkStats()
        stats.record_drop("control", "ACK")
        stats.record_drop("agent", "AGENT")
        assert stats.total_dropped() == 2

    def test_by_kind_aggregates_categories(self):
        stats = NetworkStats()
        stats.record_send("control", "X", 10)
        stats.record_send("data", "X", 30)
        assert stats.by_kind()["X"] == (2, 40)

    def test_merge(self):
        a = NetworkStats()
        a.record_send("control", "ACK", 10)
        b = NetworkStats()
        b.record_send("control", "ACK", 20)
        a.merge(b)
        assert a.total_bytes("control") == 30

    def test_rows_sorted(self):
        stats = NetworkStats()
        stats.record_send("control", "Z", 1)
        stats.record_send("agent", "A", 2)
        rows = stats.rows()
        assert rows == [("agent", "A", 1, 2), ("control", "Z", 1, 1)]

    def test_clear(self):
        stats = NetworkStats()
        stats.record_send("control", "X", 10)
        stats.clear()
        assert stats.total_messages() == 0
