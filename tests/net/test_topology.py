"""Unit tests for the topology substrate."""

import networkx as nx
import pytest

from repro.errors import HostUnreachable, NetworkError
from repro.net.topology import Topology
from repro.sim.rng import RandomStreams


@pytest.fixture
def stream():
    return RandomStreams(3).stream("topo")


class TestConstruction:
    def test_full_mesh_edges(self):
        topo = Topology.full_mesh(["a", "b", "c"])
        assert topo.graph.number_of_edges() == 3
        assert topo.cost("a", "b") == 1.0

    def test_full_mesh_jitter_requires_stream(self):
        with pytest.raises(NetworkError):
            Topology.full_mesh(["a", "b"], jitter=0.5)

    def test_full_mesh_jitter(self, stream):
        topo = Topology.full_mesh(["a", "b", "c"], cost=2.0, jitter=0.5,
                                  stream=stream)
        costs = [d["cost"] for _u, _v, d in topo.graph.edges(data=True)]
        assert all(1.5 <= c <= 2.5 for c in costs)

    def test_star(self):
        topo = Topology.star("hub", ["l1", "l2"], cost=2.0)
        assert topo.cost("l1", "l2") == 4.0  # via the hub

    def test_ring(self):
        topo = Topology.ring(["a", "b", "c", "d"])
        assert topo.cost("a", "c") == 2.0  # two hops around

    def test_ring_too_small(self):
        with pytest.raises(NetworkError):
            Topology.ring(["a", "b"])

    def test_random_costs_in_range(self, stream):
        topo = Topology.random_costs(["a", "b", "c"], stream, low=0.5, high=2.0)
        costs = [d["cost"] for _u, _v, d in topo.graph.edges(data=True)]
        assert all(0.5 <= c <= 2.0 for c in costs)

    def test_empty_graph_rejected(self):
        with pytest.raises(NetworkError):
            Topology(nx.Graph())

    def test_nonpositive_cost_rejected(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", cost=0)
        with pytest.raises(NetworkError):
            Topology(graph)


class TestRouting:
    def test_routing_table_contains_all_reachable(self):
        topo = Topology.full_mesh(["a", "b", "c"])
        table = topo.routing_table("a")
        assert set(table) == {"a", "b", "c"}
        assert table["a"] == 0.0

    def test_routing_table_unknown_host(self):
        topo = Topology.full_mesh(["a", "b"])
        with pytest.raises(HostUnreachable):
            topo.routing_table("zz")

    def test_cost_shortest_path(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", cost=10.0)
        graph.add_edge("a", "c", cost=1.0)
        graph.add_edge("c", "b", cost=1.0)
        topo = Topology(graph)
        assert topo.cost("a", "b") == 2.0  # via c

    def test_cost_unreachable(self):
        graph = nx.Graph()
        graph.add_node("island")
        graph.add_edge("a", "b", cost=1.0)
        topo = Topology(graph)
        with pytest.raises(HostUnreachable):
            topo.cost("a", "island")

    def test_neighbors_by_cost_sorted(self):
        graph = nx.Graph()
        graph.add_edge("src", "near", cost=1.0)
        graph.add_edge("src", "far", cost=5.0)
        graph.add_edge("src", "mid", cost=2.0)
        topo = Topology(graph)
        assert topo.neighbors_by_cost("src", ["far", "near", "mid"]) == [
            "near", "mid", "far",
        ]

    def test_neighbors_by_cost_deterministic_ties(self):
        topo = Topology.full_mesh(["a", "b", "c", "d"])
        assert topo.neighbors_by_cost("a", ["d", "c", "b"]) == ["b", "c", "d"]

    def test_contains(self):
        topo = Topology.full_mesh(["a", "b"])
        assert "a" in topo
        assert "zz" not in topo

    def test_invalidate_routes_recomputes(self):
        topo = Topology.full_mesh(["a", "b"], cost=1.0)
        assert topo.cost("a", "b") == 1.0
        topo.graph["a"]["b"]["cost"] = 3.0
        topo.invalidate_routes()
        assert topo.cost("a", "b") == 3.0

    def test_hosts_property(self):
        topo = Topology.full_mesh(["b", "a"])
        assert sorted(topo.hosts) == ["a", "b"]
