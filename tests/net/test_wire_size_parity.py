"""Pin hand-rolled ``wire_size()`` to the generic structural estimate.

``WriteOp.wire_size`` / ``UpdatePayload.wire_size`` (and the delta
plane's ``SharedViewDelta.wire_size``) are hand-inlined fast paths whose
comments promise "must equal the generic structural estimate": message
sizes feed the network latency model, so silent drift between the two
would shift event timing and break pinned run fingerprints. Nothing
enforced that promise until now.

The reference is computed field-by-field with
:func:`repro.net.message.estimate_size` — exactly what the generic
dataclass walk (16 B container + per-public-attribute sizes) would
charge if the class had no ``wire_size`` hook.
"""

import dataclasses

import pytest

from repro.agents.identity import AgentId
from repro.core.machines.wire import SharedViewDelta, UpdatePayload, WriteOp
from repro.net.message import estimate_size


def structural_estimate(obj) -> int:
    """What the generic dataclass fallback would report: 16 B container
    overhead plus every field at its own estimate (caches and other
    underscore attributes excluded, as in the generic walk)."""
    return 16 + sum(
        estimate_size(getattr(obj, f.name))
        for f in dataclasses.fields(obj)
    )


WRITE_OPS = [
    WriteOp(request_id=1, key="x", value="v", version=1),
    WriteOp(request_id=999, key="a-longer-key", value=12345, version=7),
    WriteOp(request_id=3, key="κλειδί", value={"nested": [1, 2.5]},
            version=2),
    WriteOp(request_id=4, key="none-value", value=None, version=1),
]


@pytest.mark.parametrize("op", WRITE_OPS, ids=lambda op: op.key)
def test_write_op_wire_size_equals_structural_estimate(op):
    assert op.wire_size() == structural_estimate(op)
    # and the hook is what estimate_size itself dispatches to
    assert estimate_size(op) == op.wire_size()


PAYLOADS = [
    UpdatePayload(batch_id=1, agent_id=AgentId("s1", 10.0, 0), origin="s1"),
    UpdatePayload(
        batch_id=2,
        agent_id=AgentId("server-9", 123.5, 3),
        origin="server-9",
        writes=tuple(WRITE_OPS),
        reply_to="server-9",
        epoch=4,
    ),
    UpdatePayload(
        batch_id=3,
        agent_id=AgentId("s2", 1.0, 1),
        origin="s2",
        writes=(WRITE_OPS[0],),
        reply_to="s2",
        trace_id="0123456789abcdef",
    ),
]


@pytest.mark.parametrize(
    "payload", PAYLOADS, ids=lambda p: f"batch{p.batch_id}"
)
def test_update_payload_wire_size_equals_structural_estimate(payload):
    expected = structural_estimate(payload)
    assert payload.wire_size() == expected
    # The memoised second call must agree with the first.
    assert payload.wire_size() == expected
    assert estimate_size(payload) == expected


DELTAS = [
    SharedViewDelta(host="s1", as_of=1.0, base_seq=0, seq=1),
    SharedViewDelta(
        host="replica-12",
        as_of=42.5,
        base_seq=3,
        seq=9,
        removed=(AgentId("s1", 1.0, 0),),
        appended=(AgentId("s2", 2.0, 1), AgentId("s3", 3.0, 0)),
        finished=(AgentId("s1", 1.0, 0),),
        versions={"x": 4, "longer-key": 2},
    ),
]


@pytest.mark.parametrize("delta", DELTAS, ids=lambda d: d.host)
def test_shared_view_delta_wire_size_equals_structural_estimate(delta):
    assert delta.wire_size() == structural_estimate(delta)
    assert estimate_size(delta) == delta.wire_size()
