"""Perf-trajectory subsystem: schema, writing, and the regression gate."""

import json

import pytest

from repro.obs.bench import (
    SCHEMA_VERSION,
    SUITES,
    BenchError,
    bench_filename,
    compare_docs,
    compare_paths,
    load_bench,
    run_suite,
    write_bench,
)


def _doc(suite="kernel", scenarios=None):
    """A minimal valid bench document for compare tests."""
    if scenarios is None:
        scenarios = [
            {"name": "event_loop", "unit": "events/s", "repeats": 3,
             "events": 1000, "wall_s": 0.01, "rate": 100000.0,
             "fingerprint": None, "params": {}},
            {"name": "des_contended", "unit": "events/s", "repeats": 2,
             "events": 700, "wall_s": 0.02, "rate": 35000.0,
             "fingerprint": "abc123", "params": {}},
        ]
    return {
        "schema": SCHEMA_VERSION,
        "suite": suite,
        "quick": True,
        "created_unix": 0.0,
        "host": {"platform": "test", "python": "3", "cpus": 1},
        "scenarios": scenarios,
    }


def _with_rates(doc, factor):
    clone = json.loads(json.dumps(doc))
    for scenario in clone["scenarios"]:
        scenario["rate"] *= factor
    return clone


class TestRunSuite:
    def test_kernel_suite_document_schema(self):
        doc = run_suite("kernel", quick=True)
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["suite"] == "kernel"
        assert doc["quick"] is True
        assert {"platform", "python", "cpus"} <= set(doc["host"])
        names = [s["name"] for s in doc["scenarios"]]
        assert names == [s.name for s in SUITES["kernel"]]
        for scenario in doc["scenarios"]:
            assert scenario["events"] > 0
            assert scenario["wall_s"] > 0
            assert scenario["rate"] > 0
            assert scenario["unit"].endswith("/s")

    def test_des_scenarios_carry_fingerprints(self):
        doc = run_suite("kernel", quick=True)
        by_name = {s["name"]: s for s in doc["scenarios"]}
        assert by_name["des_contended"]["fingerprint"]
        assert by_name["des_uncontended"]["fingerprint"]
        # deterministic: a second run reproduces the fingerprints
        again = run_suite("kernel", quick=True)
        for name in ("des_contended", "des_uncontended"):
            assert (by_name[name]["fingerprint"]
                    == {s["name"]: s for s in again["scenarios"]}
                    [name]["fingerprint"])

    def test_unknown_suite_rejected(self):
        with pytest.raises(BenchError, match="unknown bench suite"):
            run_suite("teleport")


class TestWriteLoad:
    def test_write_and_load_round_trip(self, tmp_path):
        doc = _doc()
        path = write_bench(doc, out_dir=str(tmp_path))
        assert path.endswith(bench_filename("kernel"))
        assert load_bench(path) == doc

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "BENCH_kernel.json"
        path.write_text(json.dumps({"schema": "other/v9", "suite": "k"}))
        with pytest.raises(BenchError, match="schema"):
            load_bench(str(path))

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "BENCH_kernel.json"
        path.write_text("not json")
        with pytest.raises(BenchError, match="cannot read"):
            load_bench(str(path))


class TestCompare:
    def test_identical_docs_pass(self):
        doc = _doc()
        result = compare_docs(doc, doc)
        assert result.ok
        assert len(result.lines) == 2
        assert not result.warnings

    def test_regression_over_threshold_flagged(self):
        old = _doc()
        new = _with_rates(old, 0.8)  # -20% on every scenario
        result = compare_docs(old, new, threshold=0.10)
        assert not result.ok
        assert len(result.regressions) == 2
        assert "REGRESSION" in "\n".join(result.lines)

    def test_drop_within_threshold_passes(self):
        old = _doc()
        new = _with_rates(old, 0.95)  # -5%
        assert compare_docs(old, new, threshold=0.10).ok

    def test_speedup_passes(self):
        old = _doc()
        assert compare_docs(old, _with_rates(old, 2.0)).ok

    def test_fingerprint_drift_warns_without_failing(self):
        old = _doc()
        new = json.loads(json.dumps(old))
        new["scenarios"][1]["fingerprint"] = "def456"
        result = compare_docs(old, new)
        assert result.ok
        assert any("fingerprint drift" in w for w in result.warnings)

    def test_scenario_set_drift_warns(self):
        old = _doc()
        new = _doc(scenarios=[old["scenarios"][0],
                              dict(old["scenarios"][1], name="brand_new")])
        result = compare_docs(old, new)
        assert any("no baseline scenario" in w for w in result.warnings)
        assert any("missing from new run" in w for w in result.warnings)


class TestComparePaths:
    def test_directory_to_directory(self, tmp_path):
        old_dir = tmp_path / "old"
        new_dir = tmp_path / "new"
        old_dir.mkdir()
        new_dir.mkdir()
        write_bench(_doc(), out_dir=str(old_dir))
        write_bench(_with_rates(_doc(), 0.5), out_dir=str(new_dir))
        result = compare_paths(str(old_dir), str(new_dir))
        assert not result.ok
        assert len(result.regressions) == 2

    def test_file_to_file(self, tmp_path):
        old = write_bench(_doc(), out_dir=str(tmp_path))
        assert compare_paths(old, old).ok

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(BenchError, match="no BENCH_"):
            compare_paths(str(tmp_path), str(tmp_path))

    def test_missing_baseline_suite_warns(self, tmp_path):
        old_dir = tmp_path / "old"
        new_dir = tmp_path / "new"
        old_dir.mkdir()
        new_dir.mkdir()
        write_bench(_doc(), out_dir=str(old_dir))
        write_bench(_doc(suite="live"), out_dir=str(new_dir))
        result = compare_paths(str(old_dir), str(new_dir))
        assert result.ok  # nothing comparable regressed
        assert any("no baseline file" in w for w in result.warnings)
        assert any("missing from new run" in w for w in result.warnings)
