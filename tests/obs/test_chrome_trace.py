"""Chrome trace_event exporter: JSONL → trace_event round-trip."""

import json

from repro.obs.export import (
    chrome_trace,
    iter_jsonl_records,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.hub import ObservabilityHub


def _instrumented_hub():
    """A hub with two interleaved synthetic journeys + one event."""
    hub = ObservabilityHub()
    tracer = hub.tracer
    for trace_id, offset in (("a#0", 0.0), ("b#0", 2.5)):
        root = tracer.start_span(
            "request", start=offset, trace_id=trace_id, agent=trace_id,
        )
        child = tracer.start_span(
            "migrate", parent=root, start=offset + 1.0, trace_id=trace_id,
            src="s1", dst="s2",
        )
        child.finish(end=offset + 2.0)
        tracer.event("hop", time=offset + 1.5, span=child)
        root.finish(end=offset + 5.0, status="committed")
    return hub


class TestChromeTrace:
    def test_round_trip_preserves_spans_nesting_and_clock(self, tmp_path):
        hub = _instrumented_hub()
        jsonl_path = tmp_path / "obs.jsonl"
        write_jsonl(hub, str(jsonl_path), metrics=False)
        records = read_jsonl(str(jsonl_path))
        document = chrome_trace(records)
        xs = [e for e in document["traceEvents"] if e["ph"] == "X"]
        span_records = [r for r in records if r["type"] == "span"]

        # span count survives
        assert len(xs) == len(span_records) == len(hub.tracer.spans)

        by_id = {e["args"]["id"]: e for e in xs}
        for record in span_records:
            event = by_id[record["id"]]
            # nesting survives (parent ids in args)
            assert event["args"]["parent"] == record["parent"]
            # sim-clock ms map to trace_event microseconds
            assert event["ts"] == record["start"] * 1000.0
            assert event["dur"] == (
                (record["end"] - record["start"]) * 1000.0
            )

    def test_one_process_lane_per_trace(self):
        document = chrome_trace(_instrumented_hub())
        metas = [e for e in document["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"]
        lane_names = {m["args"]["name"] for m in metas}
        assert lane_names == {"a#0", "b#0"}
        xs = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len({e["pid"] for e in xs}) == 2

    def test_instant_events_land_in_their_journey_lane(self):
        document = chrome_trace(_instrumented_hub())
        events = [e for e in document["traceEvents"] if e["ph"] == "i"]
        xs = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 2
        assert {e["pid"] for e in events} <= {e["pid"] for e in xs}

    def test_open_span_rendered_with_zero_duration(self):
        hub = ObservabilityHub()
        hub.tracer.start_span("request", start=1.0, trace_id="a#0")
        (event,) = [e for e in chrome_trace(hub)["traceEvents"]
                    if e["ph"] == "X"]
        assert event["dur"] == 0.0
        assert event["args"]["status"] == "open"

    def test_accepts_hub_directly(self):
        hub = _instrumented_hub()
        from_hub = chrome_trace(hub)
        from_records = chrome_trace(list(iter_jsonl_records(hub)))
        assert (len(from_hub["traceEvents"])
                == len(from_records["traceEvents"]))

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        hub = _instrumented_hub()
        path = tmp_path / "trace.json"
        count = write_chrome_trace(hub, str(path))
        with open(path, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) == count > 0

    def test_metrics_records_are_skipped(self):
        hub = _instrumented_hub()
        hub.registry.counter("c_total").inc()
        document = chrome_trace(hub)
        names = {e["name"] for e in document["traceEvents"]}
        assert "c_total" not in names
