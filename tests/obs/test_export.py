"""Exporter tests: JSONL round-trip, Prometheus text, human report."""

import json

from repro.obs.export import (
    format_report,
    prometheus_text,
    read_jsonl,
    summary_line,
    write_jsonl,
)
from repro.obs.hub import ObservabilityHub


def make_populated_hub():
    hub = ObservabilityHub()
    hub.counter("ops_total", "operations", ("host",)).inc(3, host="s1")
    hub.gauge("depth").set(7.0)
    hub.histogram("lat_ms", buckets=(1.0, 10.0)).observe(5.0)
    span = hub.start_span("request", start=0.0, agent="u1")
    hub.event("tick", time=1.0, span=span, detail="x")
    span.finish(end=2.0)
    return hub


class TestJsonl:
    def test_round_trip(self, tmp_path):
        hub = make_populated_hub()
        path = str(tmp_path / "obs.jsonl")
        written = write_jsonl(hub, path)
        records = read_jsonl(path)
        assert written == len(records) > 0
        assert {record["type"] for record in records} == {
            "metric", "span", "event",
        }

    def test_selective_streams(self, tmp_path):
        hub = make_populated_hub()
        metrics_path = str(tmp_path / "m.jsonl")
        trace_path = str(tmp_path / "t.jsonl")
        write_jsonl(hub, metrics_path, spans=False, events=False)
        write_jsonl(hub, trace_path, metrics=False)
        assert all(
            record["type"] == "metric"
            for record in read_jsonl(metrics_path)
        )
        assert all(
            record["type"] in ("span", "event")
            for record in read_jsonl(trace_path)
        )

    def test_span_record_shape(self, tmp_path):
        hub = make_populated_hub()
        path = str(tmp_path / "obs.jsonl")
        write_jsonl(hub, path)
        spans = [r for r in read_jsonl(path) if r["type"] == "span"]
        assert spans[0]["name"] == "request"
        assert spans[0]["start"] == 0.0
        assert spans[0]["end"] == 2.0
        assert spans[0]["attrs"] == {"agent": "u1"}
        events = [r for r in read_jsonl(path) if r["type"] == "event"]
        assert events[0]["span"] == spans[0]["id"]

    def test_non_finite_values_stay_json_safe(self, tmp_path):
        hub = ObservabilityHub()
        span = hub.start_span("odd", start=0.0, ratio=float("nan"))
        span.finish(end=1.0)
        path = str(tmp_path / "obs.jsonl")
        write_jsonl(hub, path)
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                json.loads(line)  # must not contain bare NaN/Infinity


class TestPrometheus:
    def test_exposition_format(self):
        hub = make_populated_hub()
        text = prometheus_text(hub.registry)
        assert "# TYPE ops_total counter" in text
        assert 'ops_total{host="s1"} 3' in text
        assert "# TYPE lat_ms histogram" in text
        assert 'lat_ms_bucket{le="+Inf"} 1' in text
        assert "lat_ms_count 1" in text


class TestReport:
    def test_report_sections(self):
        report = format_report(make_populated_hub(), title="demo")
        assert "demo" in report
        assert "ops_total" in report
        assert "lat_ms" in report
        assert "request" in report

    def test_empty_hub_report(self):
        report = format_report(ObservabilityHub())
        assert "no telemetry" in report

    def test_summary_line(self):
        hub = make_populated_hub()
        line = summary_line(hub, destination="out.jsonl")
        assert line.startswith("[obs] ")
        assert "-> out.jsonl" in line
