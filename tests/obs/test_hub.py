"""Hub lifecycle and deployment-injection tests."""

import pytest

from repro.obs import hub as hub_mod
from repro.obs.hub import (
    ObservabilityHub,
    disable,
    enable,
    get_hub,
    set_hub,
)
from repro.replication.deployment import Deployment


@pytest.fixture(autouse=True)
def isolate_global_hub():
    previous = hub_mod._active_hub
    set_hub(None)
    yield
    set_hub(previous)


class TestGlobalLifecycle:
    def test_default_is_none(self):
        assert get_hub() is None

    def test_enable_installs_and_disable_removes(self):
        hub = enable()
        assert get_hub() is hub
        disable()
        assert get_hub() is None

    def test_enable_reuses_installed_hub(self):
        first = enable()
        first.counter("x_total").inc()
        second = enable()
        assert second is first
        assert second.registry.get("x_total").total() == 1.0

    def test_disabled_hub_reported_as_none(self):
        set_hub(ObservabilityHub(enabled=False))
        assert get_hub() is None


class TestDeploymentInjection:
    def test_no_hub_means_no_telemetry(self):
        deployment = Deployment(n_replicas=3, seed=0)
        assert deployment.obs is None
        assert deployment.env.events_processed == 0

    def test_explicit_hub_overrides_global(self):
        global_hub = enable()
        local_hub = ObservabilityHub()
        deployment = Deployment(n_replicas=3, seed=0, obs=local_hub)
        assert deployment.obs is local_hub
        deployment.run(until=10.0)
        assert len(global_hub.registry) == 0

    def test_global_hub_picked_up(self):
        hub = enable()
        deployment = Deployment(n_replicas=3, seed=0)
        assert deployment.obs is hub

    def test_disabled_injected_hub_ignored(self):
        deployment = Deployment(
            n_replicas=3, seed=0, obs=ObservabilityHub(enabled=False)
        )
        assert deployment.obs is None

    def test_clock_bound_to_sim_time(self):
        hub = ObservabilityHub()
        deployment = Deployment(n_replicas=3, seed=0, obs=hub)
        deployment.run(until=123.0)
        assert hub.tracer.now() == deployment.env.now

    def test_hub_reset(self):
        hub = ObservabilityHub()
        counter = hub.counter("x_total")
        counter.inc()
        hub.start_span("s").finish()
        hub.event("e")
        hub.reset()
        assert counter.total() == 0.0
        assert list(hub.registry.collect()) == []
        assert len(hub.tracer) == 0
