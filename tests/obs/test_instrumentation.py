"""End-to-end instrumentation tests over real MARP runs.

The acceptance bar from the observability issue: an instrumented run
must emit at least 6 distinct metric names plus migration / lock-wait /
claim spans, and the span timings must reconcile with the run's ALT and
ATT numbers computed independently by :mod:`repro.analysis.metrics`.
"""

import pytest

from repro.core.protocol import MARP
from repro.experiments.runner import RunConfig, run_once
from repro.obs import hub as hub_mod
from repro.obs.hub import ObservabilityHub, set_hub
from repro.replication.deployment import Deployment


@pytest.fixture(autouse=True)
def isolate_global_hub():
    previous = hub_mod._active_hub
    set_hub(None)
    yield
    set_hub(previous)


@pytest.fixture()
def instrumented_run():
    hub = ObservabilityHub()
    set_hub(hub)
    result = run_once(RunConfig(
        protocol="marp",
        n_replicas=3,
        mean_interarrival=20.0,
        requests_per_client=4,
        seed=1,
    ))
    return hub, result


class TestInstrumentedRun:
    def test_emits_at_least_six_metric_names(self, instrumented_run):
        hub, _ = instrumented_run
        assert len(hub.registry.names()) >= 6

    def test_core_metric_families_present(self, instrumented_run):
        hub, result = instrumented_run
        registry = hub.registry
        for name in (
            "sim_events_total", "marp_requests_total", "marp_claims_total",
            "marp_migrations_total", "marp_alt_ms", "marp_att_ms",
            "net_messages_total", "replica_ll_length",
            "replica_grants_total", "experiment_runs_total",
        ):
            assert name in registry, name
        assert registry.get("sim_events_total").total() > 0
        assert (
            registry.get("marp_requests_total").value(status="committed")
            == result.committed
        )

    def test_span_families_present(self, instrumented_run):
        hub, result = instrumented_run
        tracer = hub.tracer
        requests = tracer.spans_named("request")
        assert len(requests) == len(result.records)
        assert tracer.spans_named("migrate")
        assert tracer.spans_named("lock-wait")
        assert tracer.spans_named("claim")
        assert not tracer.open_spans()

    def test_migration_spans_link_to_requests(self, instrumented_run):
        hub, _ = instrumented_run
        request_ids = {
            span.span_id for span in hub.tracer.spans_named("request")
        }
        for name in ("migrate", "lock-wait", "claim"):
            for span in hub.tracer.spans_named(name):
                assert span.parent_id in request_ids, name

    def test_att_reconciles_with_request_spans(self, instrumented_run):
        hub, result = instrumented_run
        committed = [
            span for span in hub.tracer.spans_named("request")
            if span.status == "committed"
        ]
        span_att = sum(s.duration for s in committed) / len(committed)
        assert span_att == pytest.approx(result.att, rel=1e-9)

    def test_alt_histogram_reconciles(self, instrumented_run):
        hub, result = instrumented_run
        assert hub.registry.get("marp_alt_ms").mean() == pytest.approx(
            result.alt, rel=1e-9
        )
        assert hub.registry.get("marp_att_ms").mean(
            status="committed"
        ) == pytest.approx(result.att, rel=1e-9)

    def test_network_counters_match_stats(self, instrumented_run):
        hub, result = instrumented_run
        net_total = hub.registry.get("net_messages_total").total()
        assert net_total == result.total_messages

    def test_events_processed_counted(self, instrumented_run):
        hub, result = instrumented_run
        env_steps = result.deployment.env.events_processed
        assert env_steps > 0
        assert (
            hub.registry.get("sim_events_total").total() == env_steps
        )

    def test_experiment_summary_event(self, instrumented_run):
        hub, result = instrumented_run
        summaries = hub.tracer.events_named("experiment.summary")
        assert len(summaries) == 1
        assert summaries[0].attrs["committed"] == result.committed
        run_spans = hub.tracer.spans_named("experiment.run")
        assert summaries[0].span_id == run_spans[0].span_id


class TestTracingRegression:
    """`enable_tracing()` must be bit-compatible with the seed repo."""

    WRITES = [("s1", "x", 1), ("s2", "x", 2), ("s3", "x", 3)]

    def run_traced(self, hub):
        deployment = Deployment(
            n_replicas=3, seed=7,
            obs=hub if hub is not None else ObservabilityHub(enabled=False),
        )
        trace = deployment.enable_tracing()
        marp = MARP(deployment)
        for host, key, value in self.WRITES:
            marp.submit_write(host, key, value)
        deployment.run(until=100_000)
        return trace

    @staticmethod
    def normalized(trace):
        # request ids come from a process-global counter, so two
        # sequential runs never share them; map to first-seen order
        ids = {}
        rows = []
        for e in trace.events:
            if e.request_id is not None and e.request_id not in ids:
                ids[e.request_id] = len(ids)
            rows.append((
                e.time, e.kind, e.host, e.agent,
                ids.get(e.request_id), e.detail,
            ))
        return rows

    def test_trace_identical_with_and_without_hub(self):
        baseline = self.run_traced(None)
        observed = self.run_traced(ObservabilityHub())
        assert len(baseline) == len(observed)
        assert self.normalized(baseline) == self.normalized(observed)

    def test_trace_events_join_hub_stream(self):
        hub = ObservabilityHub()
        trace = self.run_traced(hub)
        protocol_events = [
            event for event in hub.tracer.events
            if event.name.startswith("protocol.")
        ]
        assert len(protocol_events) == len(trace)
        assert trace.counts()["commit"] > 0
