"""Journey reconstruction and critical-path decomposition (unit)."""

import math

import pytest

from repro.obs.hub import ObservabilityHub
from repro.obs.journeys import (
    CriticalPath,
    critical_path,
    format_journey_report,
    reconstruct_journeys,
)
from repro.obs.tracing import SpanTracer


def _journey(tracer, trace_id, offset=0.0, fail_first_claim=False):
    """Record one synthetic agent journey starting at ``offset`` ms."""
    root = tracer.start_span(
        "request", start=offset, trace_id=trace_id, agent=trace_id,
        backend="synthetic", batch_id=1,
    )
    wait = tracer.start_span(
        "lock-wait", parent=root, start=offset, trace_id=trace_id
    )
    tracer.start_span(
        "migrate", parent=root, start=offset + 1.0, trace_id=trace_id,
        src="s1", dst="s2",
    ).finish(end=offset + 3.0)
    tracer.start_span(
        "park", parent=root, start=offset + 4.0, trace_id=trace_id,
        host="s2",
    ).finish(end=offset + 6.0)
    if fail_first_claim:
        wait.finish(end=offset + 7.0)
        tracer.start_span(
            "claim", parent=root, start=offset + 7.0, trace_id=trace_id,
        ).finish(end=offset + 8.0, status="conflict")
        wait = tracer.start_span(
            "lock-wait", parent=root, start=offset + 8.0, trace_id=trace_id
        )
        wait.finish(end=offset + 10.0)
    else:
        wait.finish(end=offset + 10.0)
    tracer.start_span(
        "claim", parent=root, start=offset + 10.0, trace_id=trace_id,
    ).finish(end=offset + 13.0, status="committed")
    root.finish(end=offset + 14.0, status="committed")
    return root


class TestReconstruction:
    def test_groups_by_trace_id(self):
        tracer = SpanTracer()
        _journey(tracer, "a#0")
        _journey(tracer, "b#0", offset=5.0)
        journeys = reconstruct_journeys(tracer)
        assert [j.trace_id for j in journeys] == ["a#0", "b#0"]
        assert all(j.root.name == "request" for j in journeys)
        assert all(j.complete for j in journeys)

    def test_interleaved_spans_do_not_cross_link(self):
        """Two agents recording turn-by-turn reassemble independently."""
        tracer = SpanTracer()
        root_a = tracer.start_span("request", start=0.0, trace_id="a#0")
        root_b = tracer.start_span("request", start=0.5, trace_id="b#0")
        tracer.start_span("migrate", parent=root_b, start=1.0,
                          trace_id="b#0", src="s1", dst="s3").finish(end=2.0)
        tracer.start_span("migrate", parent=root_a, start=1.5,
                          trace_id="a#0", src="s1", dst="s2").finish(end=2.5)
        tracer.start_span("lock-wait", parent=root_a, start=0.0,
                          trace_id="a#0").finish(end=4.0)
        tracer.start_span("lock-wait", parent=root_b, start=0.5,
                          trace_id="b#0").finish(end=3.0)
        root_a.finish(end=5.0, status="committed")
        root_b.finish(end=4.0, status="committed")

        journeys = {j.trace_id: j for j in reconstruct_journeys(tracer)}
        assert set(journeys) == {"a#0", "b#0"}
        spans_a = journeys["a#0"].spans
        spans_b = journeys["b#0"].spans
        assert all(s.trace_id == "a#0" for s in spans_a)
        assert all(s.trace_id == "b#0" for s in spans_b)
        assert {s.span_id for s in spans_a}.isdisjoint(
            {s.span_id for s in spans_b}
        )
        assert journeys["a#0"].hops[0].dst == "s2"
        assert journeys["b#0"].hops[0].dst == "s3"

    def test_untraced_spans_are_excluded(self):
        tracer = SpanTracer()
        tracer.start_span("experiment.run", start=0.0).finish(end=100.0)
        _journey(tracer, "a#0")
        journeys = reconstruct_journeys(tracer)
        assert len(journeys) == 1
        assert all(s.trace_id == "a#0" for s in journeys[0].spans)

    def test_accepts_hub_and_filters_by_trace(self):
        hub = ObservabilityHub()
        _journey(hub.tracer, "a#0")
        _journey(hub.tracer, "b#0")
        only_b = reconstruct_journeys(hub, trace_id="b#0")
        assert [j.trace_id for j in only_b] == ["b#0"]

    def test_partial_trace_without_root_still_reconstructs(self):
        tracer = SpanTracer()
        tracer.start_span("migrate", start=2.0, trace_id="a#0",
                          src="s1", dst="s2").finish(end=3.0)
        (journey,) = reconstruct_journeys(tracer)
        assert journey.root.name == "migrate"
        assert journey.path.travel_ms == pytest.approx(1.0)

    def test_rejects_non_tracer_source(self):
        with pytest.raises(TypeError):
            reconstruct_journeys(object())


class TestCriticalPath:
    def test_sums_are_exact(self):
        tracer = SpanTracer()
        _journey(tracer, "a#0", fail_first_claim=True)
        (journey,) = reconstruct_journeys(tracer)
        path = journey.path
        assert isinstance(path, CriticalPath)
        assert path.travel_ms == pytest.approx(2.0)
        assert path.park_ms == pytest.approx(2.0)
        assert path.retry_ms == pytest.approx(1.0)
        assert path.alt_ms == pytest.approx(10.0)
        assert path.service_ms == pytest.approx(
            path.alt_ms - path.travel_ms - path.park_ms - path.retry_ms
        )
        assert path.commit_ms == pytest.approx(3.0)
        assert path.att_ms == pytest.approx(14.0)
        assert path.tail_ms == pytest.approx(
            path.att_ms - path.alt_ms - path.commit_ms
        )

    def test_identities_hold(self):
        tracer = SpanTracer()
        _journey(tracer, "a#0")
        path = critical_path(reconstruct_journeys(tracer)[0])
        assert (path.travel_ms + path.park_ms + path.retry_ms
                + path.service_ms) == pytest.approx(path.alt_ms)
        assert (path.alt_ms + path.commit_ms
                + path.tail_ms) == pytest.approx(path.att_ms)

    def test_dominant_component(self):
        tracer = SpanTracer()
        _journey(tracer, "a#0")
        (journey,) = reconstruct_journeys(tracer)
        assert journey.path.dominant == "service"

    def test_as_dict_round_trip(self):
        tracer = SpanTracer()
        _journey(tracer, "a#0")
        data = reconstruct_journeys(tracer)[0].path.as_dict()
        assert set(data) == {
            "travel_ms", "park_ms", "retry_ms", "service_ms",
            "alt_ms", "commit_ms", "tail_ms", "att_ms",
        }
        assert all(isinstance(v, float) for v in data.values())

    def test_unfinished_root_measures_recorded_portion(self):
        tracer = SpanTracer()
        root = tracer.start_span("request", start=0.0, trace_id="a#0")
        tracer.start_span("migrate", parent=root, start=1.0,
                          trace_id="a#0", src="s1", dst="s2").finish(end=4.0)
        (journey,) = reconstruct_journeys(tracer)
        path = journey.path
        assert not journey.complete
        assert path.att_ms == pytest.approx(4.0)
        assert not math.isnan(path.alt_ms)


class TestReport:
    def test_renders_rows_and_mean(self):
        tracer = SpanTracer()
        _journey(tracer, "a#0")
        _journey(tracer, "b#0", offset=20.0)
        text = format_journey_report(reconstruct_journeys(tracer))
        assert "a#0" in text and "b#0" in text
        assert "mean/2" in text
        assert "dominant" in text

    def test_empty(self):
        assert "no journeys" in format_journey_report([])
