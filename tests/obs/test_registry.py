"""Unit tests for Counter / Gauge / Histogram / MetricsRegistry."""

import math

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates_per_label_set(self):
        counter = Counter("ops_total", labelnames=("host",))
        counter.inc(host="s1")
        counter.inc(2.5, host="s1")
        counter.inc(host="s2")
        assert counter.value(host="s1") == 3.5
        assert counter.value(host="s2") == 1.0
        assert counter.total() == 4.5

    def test_unlabelled_counter(self):
        counter = Counter("n_total")
        counter.inc()
        counter.inc(9)
        assert counter.value() == 10.0

    def test_negative_increment_rejected(self):
        counter = Counter("n_total")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_missing_label_rejected(self):
        counter = Counter("ops_total", labelnames=("host",))
        with pytest.raises(ValueError):
            counter.inc()

    def test_unknown_label_rejected(self):
        counter = Counter("ops_total", labelnames=("host",))
        with pytest.raises(ValueError):
            counter.inc(host="s1", shard="x")

    def test_unobserved_value_is_zero(self):
        assert Counter("n_total").value() == 0.0

    def test_samples(self):
        counter = Counter("ops_total", labelnames=("host",))
        counter.inc(host="s1")
        samples = list(counter.samples())
        assert len(samples) == 1
        assert samples[0].labels == {"host": "s1"}
        assert samples[0].value == 1.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(10.0)
        gauge.inc(5.0)
        gauge.dec(2.0)
        assert gauge.value() == 13.0

    def test_gauge_may_go_negative(self):
        gauge = Gauge("delta")
        gauge.dec(4.0)
        assert gauge.value() == -4.0

    def test_labelled_gauge(self):
        gauge = Gauge("ll_length", labelnames=("host",))
        gauge.set(3.0, host="s1")
        gauge.set(7.0, host="s2")
        assert gauge.value(host="s1") == 3.0
        assert gauge.value(host="s2") == 7.0


class TestHistogram:
    def test_cumulative_buckets(self):
        histogram = Histogram("lat_ms", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.bucket_counts() == {
            1.0: 1, 10.0: 2, 100.0: 3, float("inf"): 4,
        }
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(555.5)
        assert histogram.mean() == pytest.approx(555.5 / 4)

    def test_boundary_value_falls_in_bucket(self):
        histogram = Histogram("lat_ms", buckets=(10.0,))
        histogram.observe(10.0)  # le=10 is inclusive (Prometheus semantics)
        assert histogram.bucket_counts()[10.0] == 1

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat_ms", buckets=(10.0, 1.0))

    def test_empty_mean_is_nan(self):
        assert math.isnan(Histogram("lat_ms", buckets=(1.0,)).mean())

    def test_samples_include_bucket_sum_count(self):
        histogram = Histogram("lat_ms", buckets=(1.0,))
        histogram.observe(0.5)
        names = {sample.name for sample in histogram.samples()}
        assert names == {"lat_ms_bucket", "lat_ms_sum", "lat_ms_count"}
        le_values = {
            sample.labels["le"]
            for sample in histogram.samples()
            if sample.name == "lat_ms_bucket"
        }
        assert le_values == {"1", "+Inf"}


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("ops_total", labelnames=("host",))
        second = registry.counter("ops_total", labelnames=("host",))
        assert first is second
        assert len(registry) == 1

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_labelname_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labelnames=("host",))
        with pytest.raises(ValueError):
            registry.counter("x_total", labelnames=("agent",))

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad name!")

    def test_collect_and_contains(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.gauge("b").set(2.0)
        assert "a_total" in registry
        assert "missing" not in registry
        assert registry.get("missing") is None
        collected = {sample.name for sample in registry.collect()}
        assert collected == {"a_total", "b"}
        assert registry.names() == ["a_total", "b"]

    def test_clear_zeroes_series_but_keeps_definitions(self):
        registry = MetricsRegistry()
        counter = registry.counter("a_total")
        counter.inc()
        registry.clear()
        # definitions survive: components holding instrument references
        # keep recording into the same (now empty) series
        assert registry.get("a_total") is counter
        assert counter.total() == 0.0
        assert list(registry.collect()) == []
