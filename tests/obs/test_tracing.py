"""Unit tests for Span / ObsEvent / SpanTracer."""

import math

import pytest

from repro.obs.tracing import SpanTracer


def make_clocked_tracer():
    clock = {"t": 0.0}
    tracer = SpanTracer(clock=lambda: clock["t"])
    return clock, tracer


class TestSpanLifecycle:
    def test_start_finish_duration(self):
        clock, tracer = make_clocked_tracer()
        span = tracer.start_span("work")
        assert math.isnan(span.duration)
        clock["t"] = 5.0
        span.finish()
        assert span.duration == 5.0
        assert span.status == "ok"
        assert span.finished

    def test_explicit_timestamps_override_clock(self):
        tracer = SpanTracer()
        span = tracer.start_span("work", start=10.0)
        span.finish(end=25.0, status="failed", reason="timeout")
        assert span.duration == 15.0
        assert span.status == "failed"
        assert span.attrs["reason"] == "timeout"

    def test_finish_is_idempotent(self):
        tracer = SpanTracer()
        span = tracer.start_span("work", start=0.0)
        span.finish(end=1.0)
        span.finish(end=99.0, status="late")
        assert span.end == 1.0
        assert span.status == "ok"

    def test_finish_before_start_rejected(self):
        tracer = SpanTracer()
        span = tracer.start_span("work", start=10.0)
        with pytest.raises(ValueError):
            span.finish(end=5.0)


class TestNesting:
    def test_context_manager_links_children(self):
        clock, tracer = make_clocked_tracer()
        with tracer.span("outer") as outer:
            clock["t"] = 1.0
            with tracer.span("inner") as inner:
                clock["t"] = 2.0
            clock["t"] = 3.0
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.duration == 1.0
        assert outer.duration == 3.0
        assert tracer.children_of(outer) == [inner]

    def test_explicit_parent_for_interleaved_processes(self):
        tracer = SpanTracer()
        root_a = tracer.start_span("request", start=0.0, agent="a")
        root_b = tracer.start_span("request", start=0.0, agent="b")
        hop_a = tracer.start_span("migrate", parent=root_a, start=1.0)
        hop_b = tracer.start_span("migrate", parent=root_b, start=1.0)
        assert hop_a.parent_id == root_a.span_id
        assert hop_b.parent_id == root_b.span_id
        assert tracer.children_of(root_a) == [hop_a]

    def test_exception_marks_span_error(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("work") as span:
                raise RuntimeError("boom")
        assert span.status == "error"
        assert span.finished

    def test_open_spans(self):
        tracer = SpanTracer()
        span = tracer.start_span("work")
        assert tracer.open_spans() == [span]
        span.finish()
        assert tracer.open_spans() == []


class TestEvents:
    def test_event_timestamps(self):
        clock, tracer = make_clocked_tracer()
        clock["t"] = 4.0
        event = tracer.event("tick", detail="x")
        assert event.time == 4.0
        assert event.attrs["detail"] == "x"
        assert tracer.event("tock", time=9.0).time == 9.0

    def test_event_attaches_to_active_span(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            event = tracer.event("tick")
        assert event.span_id == outer.span_id

    def test_queries_and_clear(self):
        tracer = SpanTracer()
        tracer.start_span("a").finish()
        tracer.event("e")
        assert len(tracer.spans_named("a")) == 1
        assert len(tracer.events_named("e")) == 1
        assert len(tracer) == 2
        tracer.clear()
        assert len(tracer) == 0

    def test_unbound_clock_reads_zero(self):
        tracer = SpanTracer()
        assert tracer.now() == 0.0
        tracer.bind_clock(lambda: 42.0)
        assert tracer.now() == 42.0
