"""Property-based fault campaigns over the schedule adversary.

The heart of the adversary tentpole: a Hypothesis composite strategy
over the schedule DSL drives randomized crash/partition/reorder/churn
interleavings through the kernel, asserting the [D1] safety invariant
and liveness-under-heal on every draw. A failing draw shrinks over the
DSL (Hypothesis minimizes the op and submit lists) and its printed
``InvariantViolation`` embeds the replayable schedule JSON.

Also here: the mutation-detection gate the acceptance bar asks for —
break the protocol's real majority check (``vote_majority`` → 1, the
honest equivalent of "skip the majority check": ``priority.decide``
bugs are masked by the grant layer) and the campaign must catch it,
and the shrunk, corpus-pinned counterexample must keep catching it
deterministically.
"""

import pathlib
from unittest import mock

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.machines import (
    AgentMachine,
    CrashOp,
    DelayOp,
    DropOp,
    DuplicateOp,
    HealOp,
    InvariantViolation,
    KillOp,
    PartitionOp,
    RestartOp,
    Schedule,
    SubmitOp,
    check_schedule,
    generate_schedule,
    shrink_schedule,
)
from repro.core.machines.adversary import (
    HORIZON,
    MAX_EXTRA_DELAY,
    MAX_MSG_INDEX,
    campaign_rng,
    grant_ttl_floor,
    run_campaign,
)

CORPUS_DIR = pathlib.Path(__file__).parent.parent / "machines" / "corpus"


# ---------------------------------------------------------------------------
# A Hypothesis strategy over the schedule DSL. Mirrors the envelope of
# adversary.generate_schedule — minority crashes, healed partitions,
# droppable-only losses, TTLs above the floor — but lets Hypothesis own
# the search and the shrinking.
# ---------------------------------------------------------------------------


def _times(upper):
    return st.floats(
        min_value=0.0, max_value=upper, allow_nan=False,
        allow_infinity=False,
    ).map(lambda t: round(t, 1))


@st.composite
def schedules(draw):
    """Draw one in-model adversary schedule."""
    n_hosts = draw(st.sampled_from((3, 4, 5)))
    hosts = tuple(f"s{i}" for i in range(1, n_hosts + 1))
    ack_timeout = draw(
        st.floats(min_value=10.0, max_value=60.0).map(lambda t: round(t, 1))
    )
    tunables = {
        "park_timeout": draw(
            st.floats(min_value=5.0, max_value=40.0).map(
                lambda t: round(t, 1)
            )
        ),
        "ack_timeout": ack_timeout,
        "claim_backoff": draw(
            st.floats(min_value=1.0, max_value=20.0).map(
                lambda t: round(t, 1)
            )
        ),
        "max_claims": 10,
        "grant_ttl": round(
            grant_ttl_floor(ack_timeout)
            * draw(st.floats(min_value=2.0, max_value=4.0)),
            1,
        ),
    }
    n_agents = draw(st.integers(min_value=1, max_value=5))
    keys = draw(st.sampled_from((("x",), ("x", "y"))))
    submits = tuple(
        SubmitOp(
            home=draw(st.sampled_from(hosts)),
            request_id=i + 1,
            key=draw(st.sampled_from(keys)),
            value=f"v{i + 1}",
            at=draw(_times(HORIZON / 3)),
        )
        for i in range(n_agents)
    )

    ops = []
    # Minority crash windows: only a fixed subset of floor((N-1)/2)
    # hosts may ever be down, so a live majority always exists.
    f = (n_hosts - 1) // 2
    crashable = hosts[:f]
    for host in draw(
        st.lists(st.sampled_from(crashable), max_size=f, unique=True)
    ) if f else ():
        down_at = draw(_times(HORIZON * 0.6))
        up_at = round(
            min(down_at + draw(_times(80.0)) + 1.0, HORIZON - 1.0), 1
        )
        ops.append(CrashOp(host, down_at))
        ops.append(RestartOp(host, up_at))
    # At most one partition window, always healed before the horizon.
    if draw(st.booleans()):
        cut = draw(st.integers(min_value=1, max_value=n_hosts - 1))
        start = draw(_times(HORIZON * 0.5))
        span = draw(_times(HORIZON * 0.3))
        ops.append(PartitionOp((hosts[:cut], hosts[cut:]), start))
        ops.append(HealOp(round(start + span + 1.0, 1)))
    # Message-level perturbations by global send index.
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        nth = draw(st.integers(min_value=0, max_value=MAX_MSG_INDEX))
        kind = draw(st.sampled_from(("drop", "dup", "delay")))
        if kind == "drop":
            ops.append(DropOp(nth))
        elif kind == "dup":
            ops.append(DuplicateOp(nth, draw(_times(MAX_EXTRA_DELAY))))
        else:
            ops.append(
                DelayOp(nth, round(draw(_times(MAX_EXTRA_DELAY)) + 1.0, 1))
            )
    # Mid-claim churn.
    if n_agents > 1 and draw(st.booleans()):
        ops.append(
            KillOp(
                agent=draw(st.integers(min_value=0, max_value=n_agents - 1)),
                at=draw(_times(HORIZON * 0.8)),
            )
        )
    return Schedule(
        n_hosts=n_hosts,
        tunables=tunables,
        submits=submits,
        ops=tuple(ops),
    )


# ---------------------------------------------------------------------------
# The invariants property — the tentpole assertion.
# ---------------------------------------------------------------------------


@given(schedule=schedules())
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_every_in_model_schedule_upholds_safety_and_liveness(schedule):
    # check_schedule raises InvariantViolation (an AssertionError whose
    # message embeds the replayable schedule JSON) on any breach.
    check_schedule(schedule)


@given(schedule=schedules())
@settings(max_examples=25, deadline=None)
def test_schedules_survive_a_json_round_trip(schedule):
    assert Schedule.from_json(schedule.to_json()) == schedule


@given(schedule=schedules())
@settings(max_examples=10, deadline=None)
def test_checking_a_schedule_is_deterministic(schedule):
    first = check_schedule(schedule)
    second = check_schedule(schedule)
    assert first.statuses == second.statuses
    assert first.chains == second.chains
    assert first.events == second.events


def test_generation_is_a_pure_function_of_the_seed():
    for index in range(10):
        a = generate_schedule(campaign_rng(7, index))
        b = generate_schedule(campaign_rng(7, index))
        assert a == b
    assert generate_schedule(campaign_rng(7, 0)) != generate_schedule(
        campaign_rng(8, 0)
    )


def test_campaign_runs_clean_on_the_real_kernel():
    report = run_campaign(50, seed=0, shrink=False)
    assert report.ok, report.summary()
    assert report.passed == report.schedules == 50
    assert report.events > 0


# ---------------------------------------------------------------------------
# Mutation detection: the campaign must catch a broken majority check.
# ---------------------------------------------------------------------------


def broken_majority():
    """Patch the kernel so one vote 'wins' a claim round.

    This is the honest rendition of "skip the majority check": the
    ACK-vote quorum in :class:`AgentMachine` is the layer that actually
    guarantees [D1] (bugs in ``priority.decide`` alone are masked by
    the exclusive server grants), so that is the check a mutation test
    must break.
    """
    return mock.patch.object(
        AgentMachine, "vote_majority", property(lambda self: 1)
    )


def test_campaign_catches_a_broken_majority_check():
    with broken_majority():
        caught = []
        for index in range(200):
            schedule = generate_schedule(campaign_rng(0, index))
            try:
                check_schedule(schedule)
            except InvariantViolation as exc:
                caught.append((index, exc.kind))
        assert caught, (
            "200 schedules failed to catch vote_majority=1 — the "
            "adversary has lost its teeth"
        )
        assert all(kind == "safety" for _i, kind in caught)


def test_corpus_counterexample_still_catches_the_mutation():
    schedule = Schedule.load(
        str(CORPUS_DIR / "partition_split_brain_majority_cex.json")
    )
    # Passes on the real kernel (also asserted by the corpus suite)...
    check_schedule(schedule)
    # ...and deterministically convicts the mutated one.
    with broken_majority():
        details = set()
        for _ in range(3):
            with pytest.raises(InvariantViolation) as exc_info:
                check_schedule(schedule)
            assert exc_info.value.kind == "safety"
            details.add(exc_info.value.detail)
        assert len(details) == 1
        assert "two committed winners" in details.pop()


def test_shrinking_a_mutated_failure_keeps_it_failing():
    with broken_majority():
        failing = None
        for index in range(200):
            candidate = generate_schedule(campaign_rng(0, index))
            try:
                check_schedule(candidate)
            except InvariantViolation:
                failing = candidate
                break
        assert failing is not None
        shrunk = shrink_schedule(failing)
        assert len(shrunk.ops) <= len(failing.ops)
        assert len(shrunk.submits) <= len(failing.submits)
        with pytest.raises(InvariantViolation):
            check_schedule(shrunk)
