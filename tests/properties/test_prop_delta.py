"""Differential property: the delta plane is invisible to table state.

One seeded :class:`ReplicaMachine` (journal on) is driven through an
arbitrary interleaving of lock-state mutations — enqueues, commits,
aborts, requeues, recovery resets — while two agent-side
:class:`LockingTable`\\ s observe it:

* the **full** table is handed a full ``lock_view`` snapshot at every
  sync point (the classic plane);
* the **delta** table asks for a delta against its acknowledged
  sequence, exactly like ``begin_visit`` does, taking the full-snapshot
  fallback whenever the journal declines (first contact, evicted base,
  post-reset).

After every sync point both tables must agree on *everything*
decision-relevant: stored views (queue, updated set, versions, as_of,
seq), the merged UAL, the version ceilings, effective tops and host
lists. Stale re-deliveries of previously seen snapshots (the bulletin
path) are interleaved too — the delta table drops them via the O(1)
seq-skip, the full table via the classic merge, and they must still
agree.

Journal capacity is drawn small on purpose so eviction-forced fallbacks
actually happen inside the window of a few dozen operations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents.identity import AgentId
from repro.core.machines.config import ProtocolTunables
from repro.core.machines.replica import ReplicaMachine
from repro.core.machines.table import LockingTable
from repro.core.machines.wire import UpdatePayload, WriteOp

TUNABLES = ProtocolTunables(delta_views=True)

KEYS = ("x", "y", "z")


def aid(n: int) -> AgentId:
    return AgentId("h", float(n), 0)


#: (op, arg) encodings drawn by the strategy; arg indexes agents/keys.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("enq"), st.integers(0, 14)),
        st.tuples(st.just("commit"), st.integers(0, 14)),
        st.tuples(st.just("abort"), st.integers(0, 14)),
        st.tuples(st.just("requeue"), st.integers(0, 14)),
        st.tuples(st.just("reset"), st.just(0)),
        st.tuples(st.just("sync"), st.just(0)),
        st.tuples(st.just("redeliver"), st.integers(0, 200)),
    ),
    min_size=1,
    max_size=60,
)


def payload_for(n: int, writes=()):
    return UpdatePayload(
        batch_id=n, agent_id=aid(n), origin="s1", writes=tuple(writes),
        reply_to="s1",
    )


def assert_tables_agree(full: LockingTable, delta: LockingTable) -> None:
    assert delta.views == full.views
    assert delta.ual.as_set() == full.ual.as_set()
    assert delta.max_versions == full.max_versions
    assert delta.known_hosts == full.known_hosts
    assert delta.tops() == full.tops()
    assert delta.top_counts() == full.top_counts()
    for key in KEYS:
        assert (
            delta.version_ceiling(key, delta.known_hosts)
            == full.version_ceiling(key, full.known_hosts)
        )


@given(ops=OPS, capacity=st.sampled_from([2, 8, 1024]))
@settings(max_examples=120, deadline=None)
def test_delta_and_full_merge_sequences_agree(ops, capacity):
    machine = ReplicaMachine("s1", ["s1", "s2", "s3"], TUNABLES)
    machine.journal.capacity = capacity

    full = LockingTable()
    delta = LockingTable(delta_views=True)
    seen_snapshots = []  # history for stale bulletin re-deliveries
    now = 0.0
    next_version = {key: 0 for key in KEYS}

    def sync(at: float) -> None:
        snapshot = machine.lock_view(at)
        full.update(snapshot)
        seen_snapshots.append(snapshot)
        patch = machine.delta_view(at, delta.acked_seq("s1"))
        delta.ingest(patch if patch is not None else snapshot)
        assert_tables_agree(full, delta)

    for op, arg in ops:
        now += 1.0
        agent = aid(arg)
        if op == "enq":
            if (
                agent not in machine.updated_list
                and agent not in machine.locking_list
            ):
                machine.request_lock(agent, arg, now)
        elif op in ("commit", "abort"):
            if agent in machine.updated_list:
                continue
            writes = ()
            if op == "commit":
                key = KEYS[arg % len(KEYS)]
                next_version[key] += 1
                writes = (WriteOp(arg, key, f"v{arg}", next_version[key]),)
            machine.on_message(
                op.upper(), payload_for(arg, writes), src="s1", now=now
            )
        elif op == "requeue":
            if agent in machine.locking_list:
                machine.requeue_lock(agent, arg, now)
        elif op == "reset":
            machine.on_message(
                "SYNC_REPLY",
                {
                    "snapshot": machine.store.snapshot(),
                    "updated": tuple(machine.updated_list.ids()),
                },
                src="s2",
                now=now,
            )
        elif op == "redeliver" and seen_snapshots:
            stale = seen_snapshots[arg % len(seen_snapshots)]
            full.update(stale)
            delta.update(stale)
            assert_tables_agree(full, delta)
        else:
            sync(now)

    sync(now + 1.0)
