"""Property tests for the locking structures and the versioned store."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents.identity import AgentId
from repro.replication.locking import LockEntry, LockingList, UpdatedList
from repro.replication.store import VersionedStore


agent_numbers = st.lists(
    st.integers(min_value=0, max_value=30), min_size=1, max_size=30,
    unique=True,
)


def aid(n: int) -> AgentId:
    return AgentId("h", float(n), 0)


@given(numbers=agent_numbers, removals=st.data())
@settings(max_examples=80, deadline=None)
def test_locking_list_top_is_first_surviving_entry(numbers, removals):
    ll = LockingList("s1")
    for at, n in enumerate(numbers):
        ll.append(LockEntry(aid(n), n, float(at)))
    to_remove = removals.draw(
        st.lists(st.sampled_from(numbers), max_size=len(numbers),
                 unique=True)
    )
    survivors = [n for n in numbers if n not in set(to_remove)]
    for n in to_remove:
        assert ll.remove(aid(n))
    assert ll.view() == tuple(aid(n) for n in survivors)
    assert ll.top() == (aid(survivors[0]) if survivors else None)


@given(
    first=st.lists(st.integers(0, 20), max_size=15),
    second=st.lists(st.integers(0, 20), max_size=15),
)
@settings(max_examples=80, deadline=None)
def test_updated_list_merge_is_idempotent_and_commutative_as_sets(
    first, second
):
    a = UpdatedList()
    a.merge(aid(n) for n in first)
    a.merge(aid(n) for n in second)
    a.merge(aid(n) for n in second)  # idempotent

    b = UpdatedList()
    b.merge(aid(n) for n in second)
    b.merge(aid(n) for n in first)

    assert a.as_set() == b.as_set()
    assert len(a.as_set()) == len(set(first) | set(second))


@given(
    versions=st.lists(
        st.integers(min_value=1, max_value=50), min_size=1, max_size=30,
        unique=True,
    ),
    permutation_seed=st.randoms(use_true_random=False),
)
@settings(max_examples=80, deadline=None)
def test_versioned_store_convergence_is_order_independent(
    versions, permutation_seed
):
    """Applying the same set of versioned writes in any order yields the
    same final state: the value of the max version."""
    shuffled = list(versions)
    permutation_seed.shuffle(shuffled)

    store = VersionedStore()
    for at, version in enumerate(shuffled):
        store.apply("x", f"value-{version}", version, float(at))

    top = max(versions)
    assert store.version_of("x") == top
    assert store.read("x").value == f"value-{top}"


@given(
    versions=st.lists(
        st.integers(min_value=1, max_value=50), min_size=1, max_size=30,
    )
)
@settings(max_examples=80, deadline=None)
def test_versioned_store_applied_log_strictly_increases(versions):
    store = VersionedStore()
    for at, version in enumerate(versions):
        store.apply("x", version, version, float(at))
    logged = [v for _k, v, _t in store.applied_log]
    assert logged == sorted(set(logged))


@given(numbers=agent_numbers)
@settings(max_examples=50, deadline=None)
def test_agent_id_total_order(numbers):
    ids = [aid(n) for n in numbers]
    ordered = sorted(ids)
    # trichotomy + transitivity via sorted stability
    for left, right in zip(ordered, ordered[1:]):
        assert left < right or left == right
    assert sorted(ids, reverse=True) == list(reversed(ordered))
