"""Property tests for metric computation and stream reproducibility."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import alt, att, prk
from repro.analysis.stats import summarize
from repro.replication.requests import WRITE, RequestRecord
from repro.sim.rng import RandomStreams


@st.composite
def committed_records(draw):
    count = draw(st.integers(min_value=0, max_value=30))
    records = []
    for index in range(count):
        dispatched = draw(st.floats(0, 1000, allow_nan=False))
        lock_delta = draw(st.floats(0, 500, allow_nan=False))
        commit_delta = draw(st.floats(0, 500, allow_nan=False))
        visits = draw(st.integers(min_value=3, max_value=5))
        records.append(
            RequestRecord(
                request_id=index,
                home="s1",
                op=WRITE,
                key="x",
                dispatched_at=dispatched,
                lock_acquired_at=dispatched + lock_delta,
                completed_at=dispatched + lock_delta + commit_delta,
                visits_to_lock=visits,
                status="committed",
            )
        )
    return records


@given(records=committed_records())
@settings(max_examples=100, deadline=None)
def test_att_dominates_alt(records):
    a, t = alt(records), att(records)
    if records:
        assert t >= a
    else:
        assert math.isnan(a) and math.isnan(t)


@given(records=committed_records())
@settings(max_examples=100, deadline=None)
def test_prk_is_a_distribution(records):
    fractions = prk(records, n_replicas=5)
    assert set(fractions) == {3, 4, 5}
    assert all(0.0 <= f <= 1.0 for f in fractions.values())
    if records:
        assert sum(fractions.values()) == abs(sum(fractions.values()))
        assert abs(sum(fractions.values()) - 1.0) < 1e-9
    else:
        assert sum(fractions.values()) == 0.0


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        max_size=30,
    )
)
@settings(max_examples=100, deadline=None)
def test_summary_bounds(values):
    summary = summarize(values)
    if values:
        # one ulp of slack: np.mean of identical values may round
        slack = 1e-9 * max(1.0, abs(summary.maximum), abs(summary.minimum))
        assert summary.minimum - slack <= summary.mean <= summary.maximum + slack
        assert summary.minimum - slack <= summary.p50 <= summary.maximum + slack
        assert summary.ci_low <= summary.ci_high + slack
    else:
        assert summary.n == 0


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    name=st.text(min_size=1, max_size=20),
)
@settings(max_examples=60, deadline=None)
def test_streams_reproducible_for_any_seed_and_name(seed, name):
    a = RandomStreams(seed).stream(name)
    b = RandomStreams(seed).stream(name)
    assert [a.random() for _ in range(3)] == [b.random() for _ in range(3)]
