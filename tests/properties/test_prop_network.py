"""Property tests for the network substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.net.topology import Topology
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams


def build(seed: int, fifo: bool):
    env = Environment()
    topo = Topology.full_mesh(["a", "b"])
    network = Network(
        env, topo, latency=UniformLatency(1.0, 20.0),
        streams=RandomStreams(seed), fifo_links=fifo,
    )
    endpoints = {h: network.register(h) for h in ("a", "b")}
    return env, network, endpoints


@given(
    count=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=1000),
    fifo=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_reliable_channels_deliver_exactly_once(count, seed, fifo):
    """Without faults, every message is delivered exactly once."""
    env, network, eps = build(seed, fifo)
    received = []

    def receiver(env):
        for _ in range(count):
            msg = yield eps["b"].receive()
            received.append(msg.payload)

    for index in range(count):
        eps["a"].send("b", "SEQ", index)
    env.process(receiver(env))
    env.run()
    assert sorted(received) == list(range(count))
    assert network.stats.total_messages() == count
    assert network.stats.total_dropped() == 0


@given(
    count=st.integers(min_value=2, max_value=40),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=60, deadline=None)
def test_fifo_links_never_reorder(count, seed):
    env, _network, eps = build(seed, fifo=True)
    received = []

    def receiver(env):
        for _ in range(count):
            msg = yield eps["b"].receive()
            received.append(msg.payload)

    for index in range(count):
        eps["a"].send("b", "SEQ", index)
    env.process(receiver(env))
    env.run()
    assert received == list(range(count))


@given(
    seed=st.integers(min_value=0, max_value=1000),
    sizes=st.lists(
        st.integers(min_value=0, max_value=100_000), min_size=1,
        max_size=20,
    ),
)
@settings(max_examples=60, deadline=None)
def test_byte_accounting_is_exact(seed, sizes):
    env, network, eps = build(seed, fifo=False)
    total = 0
    for size in sizes:
        eps["a"].send("b", "DATA", size_bytes=size or 1)
        total += size or 1
    env.run()
    assert network.stats.total_bytes() == total
