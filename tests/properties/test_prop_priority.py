"""Property tests for the MARP decision function (Theorems 1-2).

These encode the agreement and uniqueness obligations: the decision is a
pure, deterministic function of the lock information, every agent
evaluating the same information designates the same winner, and at most
one agent can ever conclude that it holds the lock.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents.identity import AgentId
from repro.core.locking_table import LockingTable
from repro.core.priority import OTHER, STALEMATE, UNDECIDED, WIN, decide
from repro.replication.server import SharedView


def aid(n: int) -> AgentId:
    return AgentId("h", float(n), 0)


@st.composite
def lock_tables(draw, max_hosts=7, max_agents=8):
    """A random cluster lock state and the table built from it."""
    n_hosts = draw(st.integers(min_value=1, max_value=max_hosts))
    agents = draw(
        st.lists(
            st.integers(min_value=0, max_value=max_agents),
            min_size=1, max_size=max_agents, unique=True,
        )
    )
    known = draw(st.integers(min_value=0, max_value=n_hosts))
    queues = {}
    for index in range(known):
        queue = draw(
            st.lists(st.sampled_from(agents), max_size=len(agents),
                     unique=True)
        )
        queues[f"s{index + 1}"] = queue
    finished = draw(
        st.lists(st.sampled_from(agents), max_size=len(agents), unique=True)
    )
    table = LockingTable()
    for host, queue in queues.items():
        table.update(
            SharedView(
                host=host,
                as_of=1.0,
                view=tuple(aid(n) for n in queue),
                updated=frozenset(aid(n) for n in finished),
                versions={},
            )
        )
    return n_hosts, agents, table


@given(data=lock_tables())
@settings(max_examples=200, deadline=None)
def test_decision_is_deterministic(data):
    n_hosts, agents, table = data
    first = decide(table, n_hosts, aid(agents[0]))
    second = decide(table, n_hosts, aid(agents[0]))
    assert first.outcome == second.outcome
    assert first.winner == second.winner
    assert first.reason == second.reason


@given(data=lock_tables())
@settings(max_examples=200, deadline=None)
def test_all_agents_designate_the_same_winner(data):
    """Theorem 2: one winner, agreed by everyone with the same info."""
    n_hosts, agents, table = data
    winners = set()
    for agent in agents:
        decision = decide(table, n_hosts, aid(agent))
        if decision.winner is not None:
            winners.add(decision.winner)
    assert len(winners) <= 1


@given(data=lock_tables())
@settings(max_examples=200, deadline=None)
def test_at_most_one_agent_believes_it_holds_the_lock(data):
    n_hosts, agents, table = data
    holders = [
        agent
        for agent in agents
        if decide(table, n_hosts, aid(agent)).outcome == WIN
        or (
            decide(table, n_hosts, aid(agent)).outcome == STALEMATE
            and decide(table, n_hosts, aid(agent)).winner == aid(agent)
        )
    ]
    assert len(holders) <= 1


@given(data=lock_tables())
@settings(max_examples=200, deadline=None)
def test_win_implies_majority_of_known_tops(data):
    n_hosts, agents, table = data
    majority = n_hosts // 2 + 1
    for agent in agents:
        decision = decide(table, n_hosts, aid(agent))
        if decision.outcome == WIN:
            assert decision.top_counts[aid(agent)] >= majority
            assert len(decision.quorum_hosts) >= majority

    # And outcomes are always one of the defined constants.
    outcomes = {
        decide(table, n_hosts, aid(agent)).outcome for agent in agents
    }
    assert outcomes <= {WIN, OTHER, STALEMATE, UNDECIDED}


@given(data=lock_tables())
@settings(max_examples=200, deadline=None)
def test_stalemate_requires_complete_information(data):
    n_hosts, _agents, table = data
    decision = decide(table, n_hosts, aid(0))
    if decision.outcome == STALEMATE:
        assert len(table.known_hosts) == n_hosts
        assert decision.winner is not None


@given(data=lock_tables())
@settings(max_examples=200, deadline=None)
def test_finished_agents_never_win(data):
    """Agents in the UAL are out of the race entirely."""
    n_hosts, agents, table = data
    for agent in agents:
        decision = decide(table, n_hosts, aid(agent))
        if decision.winner is not None:
            assert decision.winner not in table.ual
