"""Property tests for the simulation kernel's ordering guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import Environment
from repro.sim.stores import Store


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_timeouts_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []

    def waiter(env, delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(waiter(env, delay))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    delays=st.lists(
        st.sampled_from([0.0, 1.0, 2.0]), min_size=2, max_size=30
    )
)
@settings(max_examples=60, deadline=None)
def test_equal_time_events_fifo_by_creation(delays):
    env = Environment()
    fired = []

    def waiter(env, index, delay):
        yield env.timeout(delay)
        fired.append((env.now, index))

    for index, delay in enumerate(delays):
        env.process(waiter(env, index, delay))
    env.run()
    # Among events at the same instant, creation order is preserved.
    for time_value in set(t for t, _ in fired):
        indices = [i for t, i in fired if t == time_value]
        assert indices == sorted(indices)


@given(
    items=st.lists(st.integers(), min_size=1, max_size=50),
    consumer_first=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_store_preserves_fifo(items, consumer_first):
    env = Environment()
    store = Store(env)
    out = []

    def producer(env):
        for item in items:
            yield store.put(item)
            yield env.timeout(0.5)

    def consumer(env):
        for _ in items:
            value = yield store.get()
            out.append(value)

    if consumer_first:
        env.process(consumer(env))
        env.process(producer(env))
    else:
        env.process(producer(env))
        env.process(consumer(env))
    env.run()
    assert out == items


@given(
    structure=st.recursive(
        st.one_of(st.integers(), st.floats(allow_nan=False), st.text(),
                  st.booleans(), st.none()),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=5), children, max_size=4),
        ),
        max_leaves=20,
    )
)
@settings(max_examples=100, deadline=None)
def test_estimate_size_total_and_nonnegative(structure):
    from repro.net.message import estimate_size

    size = estimate_size(structure)
    assert isinstance(size, int)
    assert size >= 0
