"""Property test for the protocol's core safety lemma.

`docs/protocol.md` §2: *an agent's set of effectively-topped servers only
grows until it finishes* — appends go to the tail and removals only
delete finished agents, so "X is effective-top at S" can never revert
while X is unfinished. The majority rule's safety rests entirely on this
monotonicity; here it is checked against arbitrary interleavings of
lock-queue operations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents.identity import AgentId
from repro.replication.locking import LockEntry, LockingList


def aid(n: int) -> AgentId:
    return AgentId("h", float(n), 0)


@st.composite
def queue_histories(draw):
    """A random history of appends and finish-removals on N servers."""
    n_servers = draw(st.integers(min_value=1, max_value=5))
    n_agents = draw(st.integers(min_value=2, max_value=10))
    operations = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["append", "finish"]),
                st.integers(min_value=0, max_value=n_agents - 1),
                st.integers(min_value=0, max_value=n_servers - 1),
            ),
            min_size=1,
            max_size=60,
        )
    )
    return n_servers, n_agents, operations


@given(history=queue_histories())
@settings(max_examples=150, deadline=None)
def test_effective_top_status_is_monotone_until_finish(history):
    n_servers, n_agents, operations = history
    queues = [LockingList(f"s{i}") for i in range(n_servers)]
    finished = set()
    clock = 0.0

    def effective_top(queue):
        for agent_id in queue.view():
            if agent_id not in finished:
                return agent_id
        return None

    def top_set(agent_number):
        return {
            index
            for index, queue in enumerate(queues)
            if effective_top(queue) == aid(agent_number)
        }

    previous_tops = {number: set() for number in range(n_agents)}

    for op, agent_number, server_index in operations:
        agent_id = aid(agent_number)
        queue = queues[server_index]
        clock += 1.0
        if op == "append":
            if agent_id in finished:
                continue  # finished agents never re-enqueue
            if agent_id not in queue:
                queue.append(
                    LockEntry(agent_id, agent_number, clock)
                )
        else:  # finish: the agent completes globally
            finished.add(agent_id)
            for q in queues:
                q.remove(agent_id)

        # Invariant: every unfinished agent's topped-server set only grew.
        for number in range(n_agents):
            if aid(number) in finished:
                continue
            current = top_set(number)
            assert previous_tops[number].issubset(current), (
                f"agent {number} lost top status at "
                f"{previous_tops[number] - current}"
            )
            previous_tops[number] = current


@given(history=queue_histories())
@settings(max_examples=150, deadline=None)
def test_two_unfinished_agents_never_share_a_top(history):
    """Corollary used by the intersection argument: effective tops are
    unique per server at every instant."""
    n_servers, _n_agents, operations = history
    queues = [LockingList(f"s{i}") for i in range(n_servers)]
    finished = set()
    clock = 0.0
    for op, agent_number, server_index in operations:
        agent_id = aid(agent_number)
        clock += 1.0
        if op == "append":
            if agent_id in finished:
                continue
            if agent_id not in queues[server_index]:
                queues[server_index].append(
                    LockEntry(agent_id, agent_number, clock)
                )
        else:
            finished.add(agent_id)
            for q in queues:
                q.remove(agent_id)
        for queue in queues:
            tops = [
                agent_id
                for agent_id in queue.view()
                if agent_id not in finished
            ][:1]
            assert len(tops) <= 1
