"""Property tests for the paper's theorems (§3.3).

* **Theorems 1/2 (unique winner)** — in every conflict round exactly
  one mobile agent wins the distributed lock: every committed version
  slot ``(key, version)`` is owned by exactly one request, versions per
  key are gapless from 1, and each committed request owns exactly one
  slot. Checked on ``RunResult.commit_slots`` — plain data that
  survives process-pool workers and the result cache — across
  randomized cluster sizes N ∈ {3, 5, 7}, arrival orders (seeds) and
  itinerary strategies.
* **Theorem 3 (migration bound)** — the winning agent learns the
  result after between ⌈(N+1)/2⌉ and N distinct server visits, read
  off ``RunResult`` records and off the ``marp_visits_to_lock``
  span/metric stream.

The whole suite routes through the env-configured engine
(``engine_runner`` fixture), so CI runs the same assertions serially
and under ``-j 2`` with cold and warm caches.
"""

import math

import pytest

from repro.analysis.metrics import visit_counts
from repro.experiments.runner import RunConfig
from repro.obs.hub import ObservabilityHub, set_hub

#: Randomized axes: cluster size × arrival order (seed) × itinerary.
CLUSTER_SIZES = (3, 5, 7)
SEEDS = (0, 7, 123)
ITINERARIES = ("cost-sorted", "static-order", "random-order")

#: High contention (15 ms gaps) so conflict rounds actually form.
CONTENTION = dict(mean_interarrival=15.0, requests_per_client=4)


def _config(n, seed, itinerary="cost-sorted", **overrides):
    params = {**CONTENTION, **overrides}
    return RunConfig(
        n_replicas=n, seed=seed, itinerary=itinerary, **params
    )


def assert_unique_winner_per_round(result):
    """Theorems 1/2: each version slot has exactly one owning request."""
    slots = result.commit_slots
    # exactly one claimed owner per (key, version) — a divergent run
    # would contribute one slot entry per claimed owner
    owners = {}
    for key, version, request_id, value in slots:
        assert (key, version) not in owners, (
            f"two winners for round ({key!r}, v{version}): "
            f"{owners[(key, version)]} and {(request_id, value)}"
        )
        owners[(key, version)] = (request_id, value)
    # versions per key are gapless from 1: one round ⇒ one new version
    by_key = {}
    for key, version, _, _ in slots:
        by_key.setdefault(key, []).append(version)
    for key, versions in by_key.items():
        assert sorted(versions) == list(range(1, len(versions) + 1))
    # every committed request owns exactly one slot, and vice versa
    committed = [r for r in result.records if r.status == "committed"]
    assert len(committed) == len(slots)
    assert {r.request_id for r in committed} == {
        request_id for _, _, request_id, _ in slots
    }
    # and the run as a whole upholds the single-copy illusion
    assert result.audit.consistent


class TestTheorem12UniqueWinner:
    @pytest.mark.parametrize("n", CLUSTER_SIZES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_unique_winner_across_sizes_and_arrival_orders(
        self, engine_runner, n, seed
    ):
        result = engine_runner.run_one(_config(n, seed))
        assert result.committed > 0
        assert_unique_winner_per_round(result)

    @pytest.mark.parametrize("itinerary", ITINERARIES)
    def test_unique_winner_across_itineraries(self, engine_runner, itinerary):
        result = engine_runner.run_one(
            _config(5, 11, itinerary=itinerary, topology="random-costs")
        )
        assert result.committed > 0
        assert_unique_winner_per_round(result)

    def test_unique_winner_under_batching(self, engine_runner):
        # One agent carries several requests: rounds are per *agent*,
        # so one winner may own several consecutive version slots, but
        # each slot still has exactly one owner.
        result = engine_runner.run_one(
            _config(5, 3, batch_size=2, requests_per_client=6)
        )
        slots = result.commit_slots
        assert len({(k, v) for k, v, _, _ in slots}) == len(slots)
        assert result.audit.consistent


class TestTheorem3MigrationBound:
    @pytest.mark.parametrize("n", CLUSTER_SIZES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_visits_within_bounds(self, engine_runner, n, seed):
        """⌈(N+1)/2⌉ <= winner visits <= N, per committed request."""
        result = engine_runner.run_one(_config(n, seed))
        counts = visit_counts(result.records)
        assert counts.size > 0
        lower = math.ceil((n + 1) / 2)
        assert counts.min() >= lower
        assert counts.max() <= n

    @pytest.mark.parametrize("n", (3, 5))
    def test_lower_bound_attained_without_contention(
        self, engine_runner, n
    ):
        """At negligible load every winner stops at exactly ⌈(N+1)/2⌉."""
        result = engine_runner.run_one(
            _config(n, 0, mean_interarrival=5000.0, requests_per_client=2)
        )
        counts = visit_counts(result.records)
        assert counts.size > 0
        assert counts.min() == counts.max() == math.ceil((n + 1) / 2)

    def test_bound_visible_in_span_stream(self):
        """The same bound read off the marp_visits_to_lock histogram.

        Runs serially under an injected hub: the metric stream lives in
        the worker process, so this check is inherently in-process.
        """
        from repro.experiments.runner import run_once
        from repro.obs.hub import get_hub

        hub = ObservabilityHub()
        previous = get_hub()
        set_hub(hub)
        try:
            result = run_once(_config(5, 1))
        finally:
            set_hub(previous)
        histogram = hub.registry.get("marp_visits_to_lock")
        assert histogram is not None
        counts = visit_counts(result.records)
        # one observation per lock-won event — at least one per commit
        # (re-acquisitions after a failed claim round observe again)
        total = histogram.count()
        assert total >= counts.size > 0
        # every observation fell inside [⌈(N+1)/2⌉, N] = [3, 5]:
        # cumulative bucket counts are empty at bound 2, full at bound 5
        cumulative = histogram.bucket_counts()
        assert cumulative[2] == 0
        assert cumulative[5] == total
