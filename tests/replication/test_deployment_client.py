"""Unit tests for deployment wiring and the open-loop client."""

import pytest

from repro.errors import ReplicationError, WorkloadError
from repro.core.protocol import MARP
from repro.net.faults import CrashSchedule, FaultPlan
from repro.replication.client import Client, attach_clients
from repro.replication.deployment import Deployment
from repro.replication.requests import WRITE
from repro.workload.arrivals import DeterministicArrivals
from repro.workload.mix import OperationMix
from repro.workload.trace import WorkloadTrace


class TestDeployment:
    def test_default_hosts_named(self):
        dep = Deployment(n_replicas=3)
        assert dep.hosts == ["s1", "s2", "s3"]

    def test_majority(self):
        assert Deployment(n_replicas=3).majority == 2
        assert Deployment(n_replicas=4).majority == 3
        assert Deployment(n_replicas=5).majority == 3

    def test_platform_and_server_lookup(self):
        dep = Deployment(n_replicas=2)
        assert dep.platform("s1").host == "s1"
        assert dep.server("s2").host == "s2"

    def test_unknown_host_rejected(self):
        dep = Deployment(n_replicas=2)
        with pytest.raises(ReplicationError):
            dep.platform("zz")
        with pytest.raises(ReplicationError):
            dep.server("zz")

    def test_invalid_replica_count(self):
        with pytest.raises(ReplicationError):
            Deployment(n_replicas=0)

    def test_replica_service_provided(self):
        dep = Deployment(n_replicas=2)
        assert dep.platform("s1").service("replica") is dep.server("s1")

    def test_alive_hosts_tracks_faults(self):
        faults = FaultPlan(crashes=CrashSchedule().add("s1", 0, 100))
        dep = Deployment(n_replicas=3, faults=faults)
        assert dep.alive_hosts() == ["s2", "s3"]

    def test_recovery_process_requests_sync(self):
        faults = FaultPlan(crashes=CrashSchedule().add("s1", 10, 50))
        dep = Deployment(n_replicas=3, faults=faults)
        dep.server("s2").store.apply("x", "survivor", 1, 0.0)
        dep.run(until=500)
        assert dep.server("s1").store.read("x").value == "survivor"
        assert dep.server("s1").recoveries == 1


class TestClient:
    def test_needs_stop_condition(self):
        dep = Deployment(n_replicas=2)
        marp = MARP(dep)
        with pytest.raises(WorkloadError):
            Client(
                marp, "s1", DeterministicArrivals(10), OperationMix(),
                dep.streams.stream("c"),
            )

    def test_submits_max_requests(self):
        dep = Deployment(n_replicas=3)
        marp = MARP(dep)
        client = Client(
            marp, "s1", DeterministicArrivals(10), OperationMix(1.0),
            dep.streams.stream("c"), max_requests=4,
        )
        dep.run(until=10_000)
        assert len(client.submitted) == 4
        assert all(r.op == WRITE for r in client.submitted)

    def test_until_bounds_generation(self):
        dep = Deployment(n_replicas=3)
        marp = MARP(dep)
        client = Client(
            marp, "s1", DeterministicArrivals(10), OperationMix(1.0),
            dep.streams.stream("c"), until=35.0,
        )
        dep.run(until=10_000)
        assert len(client.submitted) == 3  # t=10,20,30

    def test_trace_recording(self):
        dep = Deployment(n_replicas=3)
        marp = MARP(dep)
        trace = WorkloadTrace()
        Client(
            marp, "s1", DeterministicArrivals(5), OperationMix(1.0),
            dep.streams.stream("c"), max_requests=3, trace=trace,
        )
        dep.run(until=10_000)
        assert len(trace) == 3
        assert all(e.home == "s1" for e in trace)

    def test_attach_clients_one_per_host(self):
        dep = Deployment(n_replicas=3)
        marp = MARP(dep)
        clients = attach_clients(
            marp, DeterministicArrivals(10), OperationMix(1.0),
            max_requests_per_client=1,
        )
        assert sorted(c.home for c in clients) == ["s1", "s2", "s3"]
        dep.run(until=10_000)
        assert len(marp.records) == 3


class TestProtocolInterface:
    def test_unknown_home_rejected(self):
        dep = Deployment(n_replicas=2)
        marp = MARP(dep)
        with pytest.raises(ReplicationError):
            marp.submit("zz", WRITE, "x", 1)

    def test_unknown_op_rejected(self):
        dep = Deployment(n_replicas=2)
        marp = MARP(dep)
        with pytest.raises(ReplicationError):
            marp.submit("s1", "upsert", "x", 1)

    def test_open_requests_bookkeeping(self):
        dep = Deployment(n_replicas=3)
        marp = MARP(dep)
        record = marp.submit_write("s1", "x", 1)
        assert marp.open_requests() == 1
        dep.run(until=10_000)
        assert marp.open_requests() == 0
        assert record.status == "committed"
        assert marp.completed_writes() == [record]
