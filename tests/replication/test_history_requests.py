"""Unit tests for HistoryLog and RequestRecord."""

import pytest

from repro.replication.history import CommitRecord, HistoryLog
from repro.replication.requests import (
    READ,
    WRITE,
    RequestRecord,
    new_request_id,
)


def commit(n: int, key: str = "x", at: float = None) -> CommitRecord:
    return CommitRecord(
        request_id=n, key=key, value=n, version=n,
        committed_at=at if at is not None else float(n), origin="s1",
    )


class TestHistoryLog:
    def test_append_and_iterate(self):
        log = HistoryLog("s1")
        log.append(commit(1))
        log.append(commit(2))
        assert [r.version for r in log] == [1, 2]
        assert len(log) == 2

    def test_time_order_enforced(self):
        log = HistoryLog("s1")
        log.append(commit(1, at=10.0))
        with pytest.raises(ValueError):
            log.append(commit(2, at=5.0))

    def test_identities(self):
        log = HistoryLog("s1")
        log.append(commit(1))
        assert log.identities() == [(1, "x", 1)]

    def test_versions_for_key(self):
        log = HistoryLog("s1")
        log.append(commit(1, key="x"))
        log.append(commit(2, key="y"))
        log.append(commit(3, key="x"))
        assert log.versions_for("x") == [1, 3]

    def test_last(self):
        log = HistoryLog("s1")
        assert log.last() is None
        log.append(commit(1))
        assert log.last().version == 1

    def test_records_copy(self):
        log = HistoryLog("s1")
        log.append(commit(1))
        records = log.records()
        records.clear()
        assert len(log) == 1

    def test_commit_identity(self):
        assert commit(5).identity() == (5, "x", 5)


class TestRequestRecord:
    def test_new_request_ids_increase(self):
        assert new_request_id() < new_request_id()

    def test_lock_time(self):
        record = RequestRecord(1, "s1", WRITE, "x", dispatched_at=10.0,
                               lock_acquired_at=25.0)
        assert record.lock_time == 15.0

    def test_lock_time_none_until_acquired(self):
        record = RequestRecord(1, "s1", WRITE, "x", dispatched_at=10.0)
        assert record.lock_time is None

    def test_total_time(self):
        record = RequestRecord(1, "s1", WRITE, "x", dispatched_at=10.0,
                               completed_at=40.0)
        assert record.total_time == 30.0

    def test_response_time_from_creation(self):
        record = RequestRecord(1, "s1", WRITE, "x", created_at=5.0,
                               completed_at=40.0)
        assert record.response_time == 35.0

    def test_is_write(self):
        assert RequestRecord(1, "s1", WRITE, "x").is_write
        assert not RequestRecord(1, "s1", READ, "x").is_write

    def test_default_status_pending(self):
        assert RequestRecord(1, "s1", WRITE, "x").status == "pending"
