"""Unit tests for LockingList and UpdatedList."""

import pytest

from repro.errors import ProtocolError
from repro.agents.identity import AgentId
from repro.replication.locking import LockEntry, LockingList, UpdatedList


def aid(n: int) -> AgentId:
    return AgentId("h", float(n), 0)


def entry(n: int, at: float = None) -> LockEntry:
    return LockEntry(agent_id=aid(n), request_id=n,
                     enqueued_at=at if at is not None else float(n))


class TestLockingList:
    def test_empty_top_is_none(self):
        assert LockingList("s1").top() is None

    def test_append_fifo_and_top(self):
        ll = LockingList("s1")
        ll.append(entry(1))
        ll.append(entry(2))
        assert ll.top() == aid(1)
        assert len(ll) == 2

    def test_rank_positions(self):
        ll = LockingList("s1")
        ll.append(entry(1))
        ll.append(entry(2))
        assert ll.rank(aid(1)) == 0
        assert ll.rank(aid(2)) == 1
        assert ll.rank(aid(99)) is None

    def test_duplicate_append_rejected(self):
        ll = LockingList("s1")
        ll.append(entry(1))
        with pytest.raises(ProtocolError):
            ll.append(entry(1, at=10.0))

    def test_time_order_enforced(self):
        ll = LockingList("s1")
        ll.append(entry(1, at=10.0))
        with pytest.raises(ProtocolError):
            ll.append(entry(2, at=5.0))

    def test_remove_promotes_next(self):
        ll = LockingList("s1")
        ll.append(entry(1))
        ll.append(entry(2))
        assert ll.remove(aid(1))
        assert ll.top() == aid(2)

    def test_remove_absent_returns_false(self):
        assert not LockingList("s1").remove(aid(1))

    def test_remove_middle_preserves_order(self):
        ll = LockingList("s1")
        for n in (1, 2, 3):
            ll.append(entry(n))
        ll.remove(aid(2))
        assert ll.view() == (aid(1), aid(3))

    def test_view_is_immutable_snapshot(self):
        ll = LockingList("s1")
        ll.append(entry(1))
        view = ll.view()
        ll.append(entry(2))
        assert view == (aid(1),)

    def test_contains(self):
        ll = LockingList("s1")
        ll.append(entry(1))
        assert aid(1) in ll
        assert aid(2) not in ll

    def test_clear(self):
        ll = LockingList("s1")
        ll.append(entry(1))
        ll.clear()
        assert len(ll) == 0

    def test_entries_copy(self):
        ll = LockingList("s1")
        ll.append(entry(1))
        entries = ll.entries()
        entries.clear()
        assert len(ll) == 1


class TestUpdatedList:
    def test_add_preserves_order(self):
        ul = UpdatedList()
        ul.add(aid(2))
        ul.add(aid(1))
        assert ul.ids() == (aid(2), aid(1))

    def test_add_idempotent(self):
        ul = UpdatedList()
        assert ul.add(aid(1))
        assert not ul.add(aid(1))
        assert len(ul) == 1

    def test_contains(self):
        ul = UpdatedList()
        ul.add(aid(1))
        assert aid(1) in ul
        assert aid(2) not in ul

    def test_merge_counts_new(self):
        ul = UpdatedList()
        ul.add(aid(1))
        assert ul.merge([aid(1), aid(2), aid(3)]) == 2
        assert len(ul) == 3

    def test_as_set(self):
        ul = UpdatedList()
        ul.add(aid(1))
        assert ul.as_set() == frozenset([aid(1)])

    def test_iter_in_order(self):
        ul = UpdatedList()
        for n in (3, 1, 2):
            ul.add(aid(n))
        assert list(ul) == [aid(3), aid(1), aid(2)]
