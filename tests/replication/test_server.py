"""Unit tests for the replica server (Algorithm 2)."""

import pytest

from repro.errors import ProtocolError
from repro.agents.identity import AgentId
from repro.replication.deployment import Deployment
from repro.replication.server import SharedView, UpdatePayload, WriteOp


def aid(n: int) -> AgentId:
    return AgentId("client", float(n), 0)


def payload(agent_n: int, version: int = 1, value="v", epoch: int = 1,
            reply_to: str = "s1", batch: int = None) -> UpdatePayload:
    batch_id = batch if batch is not None else agent_n
    return UpdatePayload(
        batch_id=batch_id,
        agent_id=aid(agent_n),
        origin="s1",
        writes=(WriteOp(batch_id, "x", value, version),),
        reply_to=reply_to,
        epoch=epoch,
    )


@pytest.fixture
def dep():
    return Deployment(n_replicas=3, seed=0)


class TestLocalInterface:
    def test_request_lock_appends(self, dep):
        server = dep.server("s1")
        server.request_lock(aid(1), 101)
        assert server.locking_list.top() == aid(1)

    def test_request_lock_idempotent(self, dep):
        server = dep.server("s1")
        server.request_lock(aid(1), 101)
        server.request_lock(aid(1), 101)
        assert len(server.locking_list) == 1

    def test_request_lock_after_completion_rejected(self, dep):
        server = dep.server("s1")
        server.updated_list.add(aid(1))
        with pytest.raises(ProtocolError):
            server.request_lock(aid(1), 101)

    def test_lock_view_contents(self, dep):
        server = dep.server("s1")
        server.request_lock(aid(1), 101)
        server.store.apply("x", "v", 3, 0.0)
        view = server.lock_view()
        assert view.host == "s1"
        assert view.view == (aid(1),)
        assert view.versions == {"x": 3}

    def test_requeue_lock_moves_to_tail(self, dep):
        server = dep.server("s1")
        server.request_lock(aid(1), 101)
        server.request_lock(aid(2), 102)
        server.requeue_lock(aid(1), 101)
        assert server.locking_list.view() == (aid(2), aid(1))

    def test_bulletin_keeps_freshest(self, dep):
        server = dep.server("s1")
        old = SharedView("s2", 1.0, (), frozenset(), {})
        new = SharedView("s2", 2.0, (aid(1),), frozenset(), {})
        assert server.post_bulletin({"s2": old}) == 1
        assert server.post_bulletin({"s2": new}) == 1
        assert server.post_bulletin({"s2": old}) == 0
        assert server.read_bulletin()["s2"].as_of == 2.0

    def test_bulletin_ignores_own_host(self, dep):
        server = dep.server("s1")
        own = SharedView("s1", 1.0, (), frozenset(), {})
        assert server.post_bulletin({"s1": own}) == 0

    def test_bulletin_disabled(self, dep):
        server = dep.server("s1")
        server.config.enable_bulletin = False
        view = SharedView("s2", 1.0, (), frozenset(), {})
        assert server.post_bulletin({"s2": view}) == 0
        assert server.read_bulletin() == {}

    def test_wait_release_fires_on_commit(self, dep):
        server = dep.server("s1")
        server.request_lock(aid(1), 101)
        release = server.wait_release()
        dep.platform("s2").endpoint.send("s1", "COMMIT", payload(1))
        dep.run(until=100)
        assert release.triggered
        assert server.locking_list.top() is None


class TestGrantMachinery:
    def test_update_grants_and_acks_with_versions(self, dep):
        server = dep.server("s1")
        server.store.apply("x", "old", 4, 0.0)
        sender = dep.platform("s2").endpoint
        received = []

        def listener(env):
            msg = yield sender.receive(kind="ACK")
            received.append(msg.payload)

        dep.env.process(listener(dep.env))
        sender.send("s1", "UPDATE", payload(1, reply_to="s2"))
        dep.run(until=100)
        assert received[0]["versions"] == {"x": 4}
        assert server._grant_holder == aid(1)

    def test_second_agent_nacked_while_granted(self, dep):
        sender = dep.platform("s2").endpoint
        kinds = []

        def listener(env):
            for _ in range(2):
                msg = yield sender.receive(
                    match=lambda m: m.kind in ("ACK", "NACK")
                )
                kinds.append(msg.kind)

        dep.env.process(listener(dep.env))
        sender.send("s1", "UPDATE", payload(1, reply_to="s2"))
        sender.send("s1", "UPDATE", payload(2, reply_to="s2"))
        dep.run(until=100)
        assert sorted(kinds) == ["ACK", "NACK"]

    def test_same_agent_reack(self, dep):
        sender = dep.platform("s2").endpoint
        kinds = []

        def listener(env):
            for _ in range(2):
                msg = yield sender.receive(
                    match=lambda m: m.kind in ("ACK", "NACK")
                )
                kinds.append(msg.kind)

        dep.env.process(listener(dep.env))
        sender.send("s1", "UPDATE", payload(1, reply_to="s2", epoch=1))
        sender.send("s1", "UPDATE", payload(1, reply_to="s2", epoch=2))
        dep.run(until=100)
        assert kinds == ["ACK", "ACK"]

    def test_release_frees_grant(self, dep):
        server = dep.server("s1")
        sender = dep.platform("s2").endpoint
        sender.send("s1", "UPDATE", payload(1, reply_to="s2"))
        dep.run(until=50)
        assert server._grant_holder == aid(1)
        sender.send("s1", "RELEASE", payload(1, reply_to="s2"))
        dep.run(until=100)
        assert server._grant_holder is None
        # lock entry survives a RELEASE (the agent is still queued)
        assert server.updated_list.as_set() == frozenset()

    def test_stale_release_does_not_clear_newer_grant(self, dep):
        """Regression: a re-claim's UPDATE (epoch 2) can overtake the
        failed claim's RELEASE (epoch 1) in the network; the late RELEASE
        must not free the epoch-2 grant, or a second claimer could slip
        into the critical section."""
        server = dep.server("s1")
        sender = dep.platform("s2").endpoint
        sender.send("s1", "UPDATE", payload(1, reply_to="s2", epoch=2))
        dep.run(until=50)
        assert server._grant_holder == aid(1)
        assert server._grant_epoch == 2
        sender.send("s1", "RELEASE", payload(1, reply_to="s2", epoch=1))
        dep.run(until=100)
        assert server._grant_holder == aid(1)  # survived the stale release
        # An in-order release (same epoch) does clear it.
        sender.send("s1", "RELEASE", payload(1, reply_to="s2", epoch=2))
        dep.run(until=150)
        assert server._grant_holder is None

    def test_stale_update_does_not_roll_epoch_back(self, dep):
        server = dep.server("s1")
        sender = dep.platform("s2").endpoint
        sender.send("s1", "UPDATE", payload(1, reply_to="s2", epoch=3))
        dep.run(until=50)
        sender.send("s1", "UPDATE", payload(1, reply_to="s2", epoch=2))
        dep.run(until=100)
        assert server._grant_epoch == 3

    def test_grant_expires_after_ttl(self, dep):
        server = dep.server("s1")
        server.config.grant_ttl = 10.0
        sender = dep.platform("s2").endpoint
        kinds = []

        def listener(env):
            sender.send("s1", "UPDATE", payload(1, reply_to="s2"))
            msg = yield sender.receive(
                match=lambda m: m.kind in ("ACK", "NACK")
            )
            kinds.append(msg.kind)
            yield env.timeout(50)  # let the TTL lapse
            sender.send("s1", "UPDATE", payload(2, reply_to="s2"))
            msg = yield sender.receive(
                match=lambda m: m.kind in ("ACK", "NACK")
            )
            kinds.append(msg.kind)

        dep.env.process(listener(dep.env))
        dep.run(until=200)
        assert kinds == ["ACK", "ACK"]
        assert server._grant_holder == aid(2)


class TestCommitAndAbort:
    def test_commit_applies_and_cleans_up(self, dep):
        server = dep.server("s1")
        server.request_lock(aid(1), 1)
        dep.platform("s2").endpoint.send(
            "s1", "COMMIT", payload(1, version=1, value="committed")
        )
        dep.run(until=100)
        assert server.store.read("x").value == "committed"
        assert server.history.identities() == [(1, "x", 1)]
        assert aid(1) in server.updated_list
        assert aid(1) not in server.locking_list

    def test_commit_is_idempotent_on_redelivery(self, dep):
        server = dep.server("s1")
        endpoint = dep.platform("s2").endpoint
        endpoint.send("s1", "COMMIT", payload(1))
        endpoint.send("s1", "COMMIT", payload(1))
        dep.run(until=100)
        assert len(server.history) == 1
        assert server.commits_applied == 1

    def test_stale_commit_not_applied(self, dep):
        server = dep.server("s1")
        endpoint = dep.platform("s2").endpoint
        endpoint.send("s1", "COMMIT", payload(2, version=5, value="new"))
        dep.run(until=50)
        endpoint.send("s1", "COMMIT", payload(1, version=3, value="old"))
        dep.run(until=100)
        assert server.store.read("x").value == "new"
        assert len(server.history) == 1

    def test_abort_releases_everything(self, dep):
        server = dep.server("s1")
        server.request_lock(aid(1), 1)
        endpoint = dep.platform("s2").endpoint
        endpoint.send("s1", "UPDATE", payload(1, reply_to="s2"))
        dep.run(until=50)
        endpoint.send("s1", "ABORT", payload(1, reply_to="s2"))
        dep.run(until=100)
        assert server._grant_holder is None
        assert aid(1) not in server.locking_list
        assert aid(1) in server.updated_list
        assert len(server.store) == 0


class TestReadQueryAndSync:
    def test_readq_replies_with_version(self, dep):
        server = dep.server("s1")
        server.store.apply("x", "answer", 7, 0.0)
        asker = dep.platform("s2").endpoint
        replies = []

        def listener(env):
            msg = yield asker.receive(kind="READR")
            replies.append(msg.payload)

        dep.env.process(listener(dep.env))
        asker.send("s1", "READQ", {"request_id": 9, "key": "x"})
        dep.run(until=100)
        assert replies[0]["version"] == 7
        assert replies[0]["value"] == "answer"

    def test_readq_missing_key(self, dep):
        asker = dep.platform("s2").endpoint
        replies = []

        def listener(env):
            msg = yield asker.receive(kind="READR")
            replies.append(msg.payload)

        dep.env.process(listener(dep.env))
        asker.send("s1", "READQ", {"request_id": 9, "key": "ghost"})
        dep.run(until=100)
        assert replies[0]["version"] == 0
        assert replies[0]["value"] is None

    def test_sync_transfers_store_and_clears_stale_locks(self, dep):
        source = dep.server("s2")
        source.store.apply("x", "fresh", 9, 0.0)
        source.updated_list.add(aid(1))

        target = dep.server("s1")
        target.request_lock(aid(1), 1)  # stale entry of a finished agent
        target.request_sync("s2")
        dep.run(until=200)
        assert target.store.read("x").value == "fresh"
        assert aid(1) not in target.locking_list
        assert aid(1) in target.updated_list
        assert target.recoveries == 1
