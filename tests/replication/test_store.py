"""Unit tests for the versioned store."""

import pytest

from repro.replication.store import VersionedStore, VersionedValue


class TestReads:
    def test_missing_key_is_none(self):
        assert VersionedStore().read("ghost") is None

    def test_version_of_missing_is_zero(self):
        assert VersionedStore().version_of("ghost") == 0

    def test_last_update_time_missing_is_minus_inf(self):
        assert VersionedStore().last_update_time("ghost") == float("-inf")

    def test_read_returns_versioned_value(self):
        store = VersionedStore()
        store.apply("x", 7, 1, 5.0)
        entry = store.read("x")
        assert entry == VersionedValue(7, 1, 5.0)


class TestApply:
    def test_apply_installs(self):
        store = VersionedStore()
        assert store.apply("x", "v", 1, 0.0)
        assert store.version_of("x") == 1

    def test_newer_version_supersedes(self):
        store = VersionedStore()
        store.apply("x", "old", 1, 0.0)
        assert store.apply("x", "new", 2, 1.0)
        assert store.read("x").value == "new"

    def test_stale_version_rejected(self):
        store = VersionedStore()
        store.apply("x", "new", 2, 0.0)
        assert not store.apply("x", "old", 1, 1.0)
        assert store.read("x").value == "new"
        assert store.stale_rejections == 1

    def test_duplicate_version_rejected(self):
        store = VersionedStore()
        store.apply("x", "a", 1, 0.0)
        assert not store.apply("x", "a", 1, 1.0)

    def test_nonpositive_version_rejected(self):
        store = VersionedStore()
        with pytest.raises(ValueError):
            store.apply("x", "v", 0, 0.0)

    def test_applied_log_records_order(self):
        store = VersionedStore()
        store.apply("x", 1, 1, 0.0)
        store.apply("y", 2, 1, 1.0)
        store.apply("x", 3, 2, 2.0)
        assert store.applied_log == [("x", 1, 0.0), ("y", 1, 1.0), ("x", 2, 2.0)]

    def test_out_of_order_arrival_converges_to_max(self):
        # Apply versions in a scrambled order; final value must be the
        # highest version regardless.
        store = VersionedStore()
        for version in (3, 1, 5, 2, 4):
            store.apply("x", f"v{version}", version, float(version))
        assert store.read("x").value == "v5"
        assert store.version_of("x") == 5


class TestSnapshots:
    def test_snapshot_is_a_copy(self):
        store = VersionedStore()
        store.apply("x", 1, 1, 0.0)
        snapshot = store.snapshot()
        store.apply("x", 2, 2, 1.0)
        assert snapshot["x"].version == 1

    def test_install_snapshot_adopts_newer(self):
        source = VersionedStore()
        source.apply("x", "fresh", 3, 0.0)
        source.apply("y", "only-here", 1, 0.0)
        target = VersionedStore()
        target.apply("x", "stale", 1, 0.0)
        updated = target.install_snapshot(source.snapshot(), timestamp=5.0)
        assert updated == 2
        assert target.read("x").value == "fresh"
        assert target.read("y").value == "only-here"

    def test_install_snapshot_keeps_newer_local(self):
        source = VersionedStore()
        source.apply("x", "old", 1, 0.0)
        target = VersionedStore()
        target.apply("x", "new", 2, 0.0)
        assert target.install_snapshot(source.snapshot(), timestamp=5.0) == 0
        assert target.read("x").value == "new"

    def test_version_vector(self):
        store = VersionedStore()
        store.apply("a", 1, 2, 0.0)
        store.apply("b", 1, 7, 0.0)
        assert store.version_vector() == {"a": 2, "b": 7}

    def test_keys_sorted(self):
        store = VersionedStore()
        store.apply("b", 1, 1, 0.0)
        store.apply("a", 1, 1, 0.0)
        assert store.keys() == ["a", "b"]

    def test_len(self):
        store = VersionedStore()
        store.apply("a", 1, 1, 0.0)
        store.apply("a", 2, 2, 0.0)
        assert len(store) == 1
