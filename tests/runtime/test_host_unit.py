"""Deterministic unit tests of the live HostRuntime message handlers.

These drive ``_dispatch`` directly — no threads, no timers — so the live
host's state machine (grants, locking list, parking, claims, commits)
can be tested exactly like the DES server.
"""

import queue

import pytest

from repro.agents.identity import AgentId
from repro.runtime.host import HostRuntime, LiveConfig
from repro.runtime.shipping import LiveAgentState, ship
from repro.runtime.transport import LiveMessage, LiveTransport


HOSTS = ["h1", "h2", "h3"]


@pytest.fixture
def transport():
    # zero latency so every send lands in a mailbox immediately
    return LiveTransport(HOSTS, latency_range=(0.0, 0.0))


@pytest.fixture
def host(transport):
    return HostRuntime("h1", HOSTS, transport, LiveConfig())


def drain(transport, host_name):
    """All messages currently queued for a host."""
    mailbox = transport.mailbox(host_name)
    out = []
    while True:
        try:
            out.append(mailbox.get_nowait())
        except queue.Empty:
            return out


def agent_state(n: int, home="h2", key="x", value="v") -> LiveAgentState:
    return LiveAgentState(
        agent_id=AgentId(home, float(n), 0),
        home=home,
        batch_id=n,
        requests=[(n, key, value, 0.0)],
        dispatched_at=0.0,
        tour_remaining=[h for h in HOSTS if h != home],
    )


def msg(kind, payload, src="h2", dst="h1"):
    return LiveMessage(kind=kind, src=src, dst=dst, payload=payload)


class TestWriteAndAgentArrival:
    def test_write_creates_agent_and_enqueues_lock(self, host, transport):
        host._dispatch(
            msg("WRITE", {"request_id": 1, "key": "x", "value": 5,
                          "created_at": 0.0}),
            now=100.0,
        )
        # the agent enqueued locally and migrated onward
        assert len(host.locking_list) == 1
        outbound = drain(transport, "h2") + drain(transport, "h3")
        assert any(m.kind == "AGENT" for m in outbound)

    def test_agent_arrival_enqueues_and_moves_on(self, host, transport):
        state = agent_state(7)
        host._dispatch(
            msg("AGENT", ship(state), src="h2"), now=10.0,
        )
        assert any(
            entry == state.agent_id for entry, _b in host.locking_list
        )
        # it still has h3 to visit
        forwarded = drain(transport, "h3")
        assert len(forwarded) == 1
        assert forwarded[0].kind == "AGENT"

    def test_agent_with_majority_claims(self, host, transport):
        state = agent_state(7)
        # pretend it already visited h2 and h3 and topped both
        from repro.replication.server import SharedView

        for other in ("h2", "h3"):
            state.table.update(SharedView(
                host=other, as_of=1.0, view=(state.agent_id,),
                updated=frozenset(), versions={},
            ))
        state.tour_remaining = []
        host._dispatch(msg("AGENT", ship(state), src="h3"), now=10.0)
        # topping h1 + h2 + h3 = majority -> UPDATE broadcast to all
        updates = [
            m for h in HOSTS for m in drain(transport, h)
            if m.kind == "UPDATE"
        ]
        assert len(updates) == len(HOSTS)
        assert host.claims  # claim pending at this host


class TestGrantHandlers:
    def test_update_grants_and_reports_versions(self, host, transport):
        host.store["x"] = ("old", 4)
        host._dispatch(
            msg("UPDATE", {
                "batch_id": 1, "epoch": 1,
                "agent_id": AgentId("h2", 1.0, 0), "reply_to": "h2",
            }),
            now=10.0,
        )
        acks = [m for m in drain(transport, "h2") if m.kind == "ACK"]
        assert len(acks) == 1
        assert acks[0].payload["versions"] == {"x": 4}
        assert host.grant_holder == AgentId("h2", 1.0, 0)

    def test_second_claimer_nacked(self, host, transport):
        a, b = AgentId("h2", 1.0, 0), AgentId("h3", 2.0, 0)
        host._dispatch(
            msg("UPDATE", {"batch_id": 1, "epoch": 1, "agent_id": a,
                           "reply_to": "h2"}),
            now=10.0,
        )
        host._dispatch(
            msg("UPDATE", {"batch_id": 2, "epoch": 1, "agent_id": b,
                           "reply_to": "h3"}, src="h3"),
            now=11.0,
        )
        nacks = [m for m in drain(transport, "h3") if m.kind == "NACK"]
        assert len(nacks) == 1
        assert host.grant_holder == a

    def test_stale_release_epoch_guarded(self, host, transport):
        a = AgentId("h2", 1.0, 0)
        host._dispatch(
            msg("UPDATE", {"batch_id": 1, "epoch": 2, "agent_id": a,
                           "reply_to": "h2"}),
            now=10.0,
        )
        host._dispatch(
            msg("RELEASE", {"batch_id": 1, "agent_id": a, "epoch": 1}),
            now=11.0,
        )
        assert host.grant_holder == a  # stale release ignored
        host._dispatch(
            msg("RELEASE", {"batch_id": 1, "agent_id": a, "epoch": 2}),
            now=12.0,
        )
        assert host.grant_holder is None

    def test_grant_ttl_expiry(self, transport):
        config = LiveConfig(grant_ttl=100.0)
        host = HostRuntime("h1", HOSTS, transport, config)
        a, b = AgentId("h2", 1.0, 0), AgentId("h3", 2.0, 0)
        host._dispatch(
            msg("UPDATE", {"batch_id": 1, "epoch": 1, "agent_id": a,
                           "reply_to": "h2"}),
            now=10.0,
        )
        host._dispatch(
            msg("UPDATE", {"batch_id": 2, "epoch": 1, "agent_id": b,
                           "reply_to": "h3"}, src="h3"),
            now=200.0,  # past the TTL
        )
        assert host.grant_holder == b


class TestCommitPath:
    def test_commit_applies_in_version_order(self, host):
        a = AgentId("h2", 1.0, 0)
        host._dispatch(
            msg("COMMIT", {
                "batch_id": 1, "agent_id": a,
                "writes": ((1, "x", "new", 2),), "origin": "h2",
            }),
            now=10.0,
        )
        host._dispatch(
            msg("COMMIT", {
                "batch_id": 2, "agent_id": AgentId("h3", 2.0, 0),
                "writes": ((2, "x", "stale", 1),), "origin": "h3",
            }),
            now=11.0,
        )
        assert host.store["x"] == ("new", 2)
        assert host.history == [(1, "x", 2)]

    def test_commit_removes_lock_and_wakes_parked(self, host, transport):
        winner = AgentId("h2", 1.0, 0)
        host.locking_list.append((winner, 1))
        parked = agent_state(9, home="h1")
        parked.tour_remaining = []
        host.parked[parked.agent_id] = (parked, 1e12)
        host._dispatch(
            msg("COMMIT", {
                "batch_id": 1, "agent_id": winner,
                "writes": ((1, "x", "v", 1),), "origin": "h2",
            }),
            now=10.0,
        )
        assert all(entry != winner for entry, _b in host.locking_list)
        assert winner in host.updated
        assert parked.agent_id not in host.parked  # woken

    def test_claim_timeout_fails_claim(self, host, transport):
        state = agent_state(5, home="h1")
        state.tour_remaining = []
        host._start_claim(state, now=10.0)
        assert 5 in host.claims
        host._check_timers(now=10.0 + host.config.ack_timeout + 1)
        assert 5 not in host.claims
        releases = [
            m for h in HOSTS for m in drain(transport, h)
            if m.kind == "RELEASE"
        ]
        assert len(releases) == len(HOSTS)
        # A pure timeout (no NACKs) does not count toward the abort
        # budget — only contended (conflict) failures do, matching the
        # DES backend now that both drive the same kernel. The agent
        # backs off and will retry.
        assert state.failed_claims == 0
        assert state.agent_id in host.parked
