"""Tests for the live (thread/process) runtime backend."""

import pickle

import pytest

from repro.agents.identity import AgentId
from repro.errors import NetworkError, ReplicationError
from repro.runtime.cluster import LiveCluster
from repro.runtime.shipping import LiveAgentState, ship, unship
from repro.runtime.transport import LiveMessage, LiveTransport


class TestShipping:
    def test_round_trip(self):
        state = LiveAgentState(
            agent_id=AgentId("h1", 1.0, 0),
            home="h1",
            batch_id=7,
            requests=[(7, "x", 42, 0.0)],
        )
        state.visited.add("h1")
        restored = unship(ship(state))
        assert restored.agent_id == state.agent_id
        assert restored.requests == state.requests
        assert restored.visited == {"h1"}

    def test_unship_type_checked(self):
        with pytest.raises(TypeError):
            unship(pickle.dumps({"not": "an agent"}))

    def test_ship_size_reflects_payload(self):
        small = LiveAgentState(
            agent_id=AgentId("h1", 1.0, 0), home="h1", batch_id=1,
            requests=[(1, "x", 0, 0.0)],
        )
        big = LiveAgentState(
            agent_id=AgentId("h1", 1.0, 0), home="h1", batch_id=1,
            requests=[(1, "x", "v" * 5000, 0.0)],
        )
        assert len(ship(big)) > len(ship(small))


class TestTransport:
    def test_delivery(self):
        transport = LiveTransport(["a", "b"], latency_range=(0.0, 0.0))
        transport.send(LiveMessage(kind="X", src="a", dst="b", payload=1))
        msg = transport.mailbox("b").get(timeout=1.0)
        assert msg.payload == 1

    def test_delayed_delivery(self):
        transport = LiveTransport(["a", "b"], latency_range=(5.0, 10.0))
        delay = transport.send(
            LiveMessage(kind="X", src="a", dst="b")
        )
        assert 5.0 <= delay <= 10.0
        msg = transport.mailbox("b").get(timeout=1.0)
        assert msg.kind == "X"

    def test_unknown_destination(self):
        transport = LiveTransport(["a"])
        with pytest.raises(NetworkError):
            transport.send(LiveMessage(kind="X", src="a", dst="zz"))

    def test_invalid_backend(self):
        with pytest.raises(NetworkError):
            LiveTransport(["a"], backend="quantum")

    def test_invalid_latency_range(self):
        with pytest.raises(NetworkError):
            LiveTransport(["a"], latency_range=(5.0, 1.0))


class TestLiveClusterThread:
    def test_writes_commit_and_stay_consistent(self):
        with LiveCluster(n_replicas=3, backend="thread", seed=3) as cluster:
            for index in range(9):
                cluster.submit_write(
                    cluster.hosts[index % 3], "x", index
                )
            records = cluster.wait_for(9, timeout=60)
        assert all(r["status"] == "committed" for r in records)
        report = cluster.audit()
        assert report.consistent
        assert report.total_commits == 9

    def test_visits_at_least_majority(self):
        with LiveCluster(n_replicas=3, backend="thread", seed=4) as cluster:
            cluster.submit_write("h1", "x", 1)
            records = cluster.wait_for(1, timeout=30)
        assert records[0]["visits_to_lock"] >= 2  # ceil((3+1)/2)

    def test_submit_to_unknown_host_rejected(self):
        cluster = LiveCluster(n_replicas=2).start()
        try:
            with pytest.raises(ReplicationError):
                cluster.submit_write("nope", "x", 1)
        finally:
            cluster.shutdown()

    def test_submit_before_start_rejected(self):
        cluster = LiveCluster(n_replicas=2)
        with pytest.raises(ReplicationError):
            cluster.submit_write("h1", "x", 1)

    def test_invalid_replica_count(self):
        with pytest.raises(ReplicationError):
            LiveCluster(n_replicas=0)

    def test_wait_timeout_raises(self):
        with LiveCluster(n_replicas=2, backend="thread") as cluster:
            with pytest.raises(TimeoutError):
                cluster.wait_for(1, timeout=0.3)

    def test_multiple_keys(self):
        with LiveCluster(n_replicas=3, backend="thread", seed=5) as cluster:
            cluster.submit_write("h1", "a", 1)
            cluster.submit_write("h2", "b", 2)
            records = cluster.wait_for(2, timeout=30)
        assert all(r["status"] == "committed" for r in records)
        final = next(iter(cluster.shutdown().values()), None) or list(
            cluster._finals.values()
        )[0]
        assert set(final["store"]) == {"a", "b"}


class TestLiveClusterProcess:
    def test_process_backend_commits_consistently(self):
        with LiveCluster(n_replicas=3, backend="process", seed=6) as cluster:
            for index in range(6):
                cluster.submit_write(cluster.hosts[index % 3], "x", index)
            records = cluster.wait_for(6, timeout=60)
        assert all(r["status"] == "committed" for r in records)
        report = cluster.audit()
        assert report.consistent
        assert report.total_commits == 6
