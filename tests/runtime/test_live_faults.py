"""Live-backend fault injection: blocked links and isolated hosts."""

import time

from repro.runtime import LiveCluster, LiveMessage, LiveTransport


class TestTransportBlocking:
    def test_blocked_link_drops_messages(self):
        transport = LiveTransport(["a", "b"], latency_range=(0.0, 0.0))
        transport.block("a", "b")
        delay = transport.send(
            LiveMessage(kind="X", src="a", dst="b")
        )
        assert delay == -1.0
        assert transport.mailbox("b").empty()

    def test_block_is_bidirectional_and_unblock_restores(self):
        transport = LiveTransport(["a", "b"], latency_range=(0.0, 0.0))
        transport.block("a", "b")
        assert transport.send(LiveMessage(kind="X", src="b", dst="a")) == -1.0
        transport.unblock("a", "b")
        transport.send(LiveMessage(kind="X", src="a", dst="b"))
        assert transport.mailbox("b").get(timeout=1.0).kind == "X"

    def test_isolate_and_heal(self):
        transport = LiveTransport(["a", "b", "c"], latency_range=(0.0, 0.0))
        transport.isolate("c")
        assert transport.send(LiveMessage(kind="X", src="a", dst="c")) == -1.0
        assert transport.send(LiveMessage(kind="X", src="a", dst="b")) >= 0
        transport.heal("c")
        assert transport.send(LiveMessage(kind="X", src="a", dst="c")) >= 0


class TestLiveClusterWithIsolatedHost:
    def test_majority_still_commits(self):
        """With one of three live hosts cut off, agents from the others
        still assemble a 2-of-3 majority of grants and commit."""
        with LiveCluster(n_replicas=3, backend="thread", seed=13) as cluster:
            cluster.transport.isolate("h3")
            for index in range(4):
                cluster.submit_write(
                    cluster.hosts[index % 2], "x", index  # h1/h2 only
                )
            records = cluster.wait_for(4, timeout=90)
        assert all(r["status"] == "committed" for r in records)

    def test_healed_host_resumes_participation(self):
        with LiveCluster(n_replicas=3, backend="thread", seed=14) as cluster:
            cluster.transport.isolate("h3")
            cluster.submit_write("h1", "x", "during")
            cluster.wait_for(1, timeout=90)
            cluster.transport.heal("h3")
            time.sleep(0.2)
            cluster.submit_write("h3", "x", "after-heal")
            records = cluster.wait_for(2, timeout=90)
        assert all(r["status"] == "committed" for r in records)
        report = cluster.audit()
        assert report.divergence_free
