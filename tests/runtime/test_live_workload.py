"""Tests for the live workload driver."""

import pytest

from repro.errors import WorkloadError
from repro.analysis.metrics import alt, att, committed_writes
from repro.runtime import LiveCluster, LiveWorkloadDriver, records_from_dicts


class TestRecordsFromDicts:
    def test_conversion(self):
        raw = [{
            "request_id": 3, "home": "h2", "status": "committed",
            "dispatched_at": 10.0, "lock_acquired_at": 20.0,
            "completed_at": 25.0, "visits_to_lock": 2,
            "agent_id": "h2@10#0",
        }]
        records = records_from_dicts(raw)
        assert records[0].lock_time == 10.0
        assert records[0].total_time == 15.0
        assert records[0].is_write

    def test_metrics_apply(self):
        raw = [
            {
                "request_id": n, "home": "h1", "status": "committed",
                "dispatched_at": 0.0, "lock_acquired_at": 5.0 * n,
                "completed_at": 6.0 * n, "visits_to_lock": 2,
                "agent_id": None,
            }
            for n in (1, 2)
        ]
        records = records_from_dicts(raw)
        assert alt(records) == 7.5
        assert att(records) == 9.0


class TestLiveWorkloadDriver:
    def test_validation(self):
        cluster = LiveCluster(n_replicas=2)
        with pytest.raises(WorkloadError):
            LiveWorkloadDriver(cluster, mean_interarrival_ms=0)
        with pytest.raises(WorkloadError):
            LiveWorkloadDriver(cluster, writes_per_host=0)

    def test_drives_full_workload(self):
        with LiveCluster(n_replicas=3, backend="thread", seed=11) as cluster:
            driver = LiveWorkloadDriver(
                cluster, mean_interarrival_ms=10.0, writes_per_host=3,
                seed=11,
            )
            records = driver.run(timeout=60.0)
        assert len(records) == driver.total_writes == 9
        assert len(committed_writes(records)) == 9
        assert cluster.audit().consistent
