"""Unit tests for AllOf / AnyOf conditions."""

import pytest

from repro.errors import SimulationError
from repro.sim.conditions import AllOf, AnyOf
from repro.sim.core import Environment


class TestAnyOf:
    def test_fires_at_first_event(self, env):
        def proc(env):
            t1 = env.timeout(1, "fast")
            t2 = env.timeout(5, "slow")
            result = yield AnyOf(env, [t1, t2])
            assert env.now == 1.0
            assert list(result.values()) == ["fast"]

        env.process(proc(env))
        env.run()

    def test_empty_anyof_fires_immediately(self, env):
        def proc(env):
            yield AnyOf(env, [])
            assert env.now == 0.0

        env.process(proc(env))
        env.run()

    def test_pretriggered_timeout_does_not_count_until_processed(self, env):
        # A Timeout is "triggered" from construction; the condition must
        # wait for it to actually occur.
        def proc(env):
            t = env.timeout(3, "x")
            assert t.triggered  # pre-triggered by design
            yield AnyOf(env, [t])
            assert env.now == 3.0

        env.process(proc(env))
        env.run()

    def test_same_instant_events_deliver_one(self, env):
        def proc(env):
            result = yield env.timeout(1, "a") | env.timeout(1, "b")
            assert sorted(result.values()) == ["a"]

        env.process(proc(env))
        env.run()


class TestAllOf:
    def test_waits_for_all(self, env):
        def proc(env):
            result = yield env.timeout(1, "x") & env.timeout(4, "y")
            assert env.now == 4.0
            assert sorted(result.values()) == ["x", "y"]

        env.process(proc(env))
        env.run()

    def test_empty_allof_fires_immediately(self, env):
        def proc(env):
            yield AllOf(env, [])
            assert env.now == 0.0

        env.process(proc(env))
        env.run()

    def test_result_maps_events_to_values(self, env):
        def proc(env):
            t1 = env.timeout(1, 10)
            t2 = env.timeout(2, 20)
            result = yield AllOf(env, [t1, t2])
            assert result[t1] == 10
            assert result[t2] == 20

        env.process(proc(env))
        env.run()


class TestConditionFailures:
    def test_constituent_failure_fails_condition(self, env):
        def boom(env, event):
            yield env.timeout(1)
            event.fail(RuntimeError("kapow"))

        def proc(env):
            event = env.event()
            env.process(boom(env, event))
            with pytest.raises(RuntimeError, match="kapow"):
                yield event & env.timeout(10)

        env.process(proc(env))
        env.run()

    def test_already_failed_event_fails_condition_at_creation(self, env):
        def proc(env):
            failed = env.event()
            failed.fail(RuntimeError("pre-failed"))
            yield env.timeout(1)  # let it be processed... it raises
            yield failed & env.timeout(5)

        env.process(proc(env))
        with pytest.raises(RuntimeError, match="pre-failed"):
            env.run()

    def test_mixed_environment_rejected(self, env):
        other = Environment()
        with pytest.raises(SimulationError):
            AllOf(env, [env.timeout(1), other.timeout(1)])


class TestConditionComposition:
    def test_nested_conditions(self, env):
        def proc(env):
            inner = env.timeout(1, "a") | env.timeout(2, "b")
            result = yield inner & env.timeout(3, "c")
            assert env.now == 3.0
            assert len(result) == 2  # inner condition + the timeout

        env.process(proc(env))
        env.run()

    def test_already_processed_constituent_counts(self, env):
        def proc(env):
            done = env.timeout(1, "early")
            yield env.timeout(2)  # `done` processed at t=1
            result = yield AllOf(env, [done, env.timeout(1, "late")])
            assert env.now == 3.0
            assert sorted(result.values()) == ["early", "late"]

        env.process(proc(env))
        env.run()
