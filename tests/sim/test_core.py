"""Unit tests for the Environment and Process machinery."""

import pytest

from repro.errors import SimulationError
from repro.sim.core import NORMAL, URGENT, Environment
from repro.sim.interrupts import Interrupt


class TestClock:
    def test_initial_time_default(self):
        assert Environment().now == 0.0

    def test_initial_time_custom(self):
        assert Environment(initial_time=10.5).now == 10.5

    def test_time_advances_with_timeouts(self, env):
        def proc(env):
            yield env.timeout(3)
            assert env.now == 3.0
            yield env.timeout(4.5)
            assert env.now == 7.5

        env.process(proc(env))
        env.run()
        assert env.now == 7.5

    def test_peek_empty_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_peek_returns_next_event_time(self, env):
        env.timeout(5)
        assert env.peek() == 5.0


class TestScheduling:
    def test_same_time_events_fifo(self, env):
        order = []

        def proc(env, tag):
            yield env.timeout(1)
            order.append(tag)

        for tag in ("a", "b", "c"):
            env.process(proc(env, tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_urgent_beats_normal_at_same_time(self, env):
        order = []
        normal = env.event()
        normal._ok = True
        normal._value = None
        normal.callbacks.append(lambda e: order.append("normal"))
        urgent = env.event()
        urgent._ok = True
        urgent._value = None
        urgent.callbacks.append(lambda e: order.append("urgent"))
        env.schedule(normal, delay=1, priority=NORMAL)
        env.schedule(urgent, delay=1, priority=URGENT)
        env.run()
        assert order == ["urgent", "normal"]

    def test_negative_delay_rejected(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            env.schedule(event, delay=-1)

    def test_step_on_empty_schedule_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()


class TestRunUntil:
    def test_run_until_time_stops_clock(self, env):
        ticks = []

        def clock(env):
            while True:
                yield env.timeout(1)
                ticks.append(env.now)

        env.process(clock(env))
        env.run(until=5)
        assert env.now == 5.0
        assert ticks == [1.0, 2.0, 3.0, 4.0]

    def test_run_until_event_returns_value(self, env):
        def proc(env):
            yield env.timeout(2)
            return "done"

        result = env.run(until=env.process(proc(env)))
        assert result == "done"
        assert env.now == 2.0

    def test_run_until_past_time_raises(self):
        env = Environment(initial_time=10)
        with pytest.raises(SimulationError):
            env.run(until=5)

    def test_run_until_already_processed_event(self, env):
        event = env.event()
        event.succeed("early")
        env.run()
        assert env.run(until=event) == "early"

    def test_run_until_event_that_never_fires_raises(self, env):
        event = env.event()  # never triggered, queue drains
        with pytest.raises(SimulationError):
            env.run(until=event)

    def test_run_drains_queue_and_returns_none(self, env):
        env.timeout(1)
        assert env.run() is None


class TestProcess:
    def test_process_requires_generator(self, env):
        with pytest.raises(SimulationError):
            env.process(lambda: None)  # type: ignore[arg-type]

    def test_process_return_value_propagates(self, env):
        def child(env):
            yield env.timeout(1)
            return 99

        def parent(env):
            value = yield env.process(child(env))
            assert value == 99

        env.process(parent(env))
        env.run()

    def test_process_exception_propagates_to_waiter(self, env):
        def child(env):
            yield env.timeout(1)
            raise ValueError("child died")

        def parent(env):
            with pytest.raises(ValueError, match="child died"):
                yield env.process(child(env))

        env.process(parent(env))
        env.run()

    def test_unwaited_process_exception_raises_from_run(self, env):
        def child(env):
            yield env.timeout(1)
            raise ValueError("nobody caught me")

        env.process(child(env))
        with pytest.raises(ValueError, match="nobody caught me"):
            env.run()

    def test_yielding_non_event_raises(self, env):
        def proc(env):
            yield 42  # type: ignore[misc]

        env.process(proc(env))
        with pytest.raises(SimulationError, match="non-event"):
            env.run()

    def test_yielding_foreign_event_raises(self, env):
        other = Environment()

        def proc(env):
            yield other.timeout(1)

        env.process(proc(env))
        with pytest.raises(SimulationError, match="different environment"):
            env.run()

    def test_is_alive_tracks_lifetime(self, env):
        def proc(env):
            yield env.timeout(1)

        process = env.process(proc(env))
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_yield_already_processed_event_resumes_immediately(self, env):
        done = env.event()
        done.succeed("cached")

        def proc(env):
            yield env.timeout(1)  # let `done` be processed first
            value = yield done
            assert value == "cached"
            assert env.now == 1.0

        env.process(proc(env))
        env.run()

    def test_active_process_visible_during_resume(self, env):
        seen = []

        def proc(env):
            seen.append(env.active_process)
            yield env.timeout(1)

        process = env.process(proc(env))
        env.run()
        assert seen == [process]
        assert env.active_process is None

    def test_process_name_from_generator(self, env):
        def my_behavior(env):
            yield env.timeout(1)

        process = env.process(my_behavior(env))
        assert "my_behavior" in repr(process)

    def test_process_custom_name(self, env):
        def gen(env):
            yield env.timeout(1)

        process = env.process(gen(env), name="worker-7")
        assert process.name == "worker-7"


class TestInterruptViaProcess:
    def test_interrupting_dead_process_raises(self, env):
        def proc(env):
            yield env.timeout(1)

        process = env.process(proc(env))
        env.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_self_interrupt_rejected(self, env):
        def proc(env):
            env.active_process.interrupt()
            yield env.timeout(1)

        env.process(proc(env))
        with pytest.raises(SimulationError, match="interrupt itself"):
            env.run()

    def test_interrupted_process_can_continue(self, env):
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                log.append(("interrupted", env.now, interrupt.cause))
            yield env.timeout(1)
            log.append(("resumed", env.now))

        def waker(env, target):
            yield env.timeout(5)
            target.interrupt("wake")

        target = env.process(sleeper(env))
        env.process(waker(env, target))
        env.run()
        assert log == [("interrupted", 5.0, "wake"), ("resumed", 6.0)]
