"""Unit tests for the event primitive."""

import pytest

from repro.errors import SimulationError
from repro.sim.core import Environment
from repro.sim.events import PENDING, Event


class TestEventLifecycle:
    def test_new_event_is_pending(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed
        assert event.callbacks == []

    def test_succeed_sets_value_and_ok(self, env):
        event = env.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_default_value_is_none(self, env):
        event = env.event()
        event.succeed()
        assert event.value is None

    def test_fail_sets_exception(self, env):
        event = env.event()
        exc = RuntimeError("boom")
        event.fail(exc)
        event.defused()
        assert event.triggered
        assert not event.ok
        assert event.value is exc

    def test_value_before_trigger_raises(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_ok_before_trigger_raises(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.ok

    def test_double_succeed_raises(self, env):
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_succeed_after_fail_raises(self, env):
        event = env.event()
        event.fail(ValueError("x"))
        event.defused()
        with pytest.raises(SimulationError):
            event.succeed(1)

    def test_fail_requires_exception_instance(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")  # type: ignore[arg-type]

    def test_trigger_copies_state_from_other_event(self, env):
        source = env.event()
        source.succeed("payload")
        target = env.event()
        target.trigger(source)
        assert target.triggered
        assert target.value == "payload"

    def test_repr_states(self, env):
        event = env.event()
        assert "pending" in repr(event)
        event.succeed()
        assert "triggered" in repr(event)
        env.run()
        assert "processed" in repr(event)


class TestEventCallbacks:
    def test_callbacks_run_on_processing(self, env):
        event = env.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("v")
        env.run()
        assert seen == ["v"]
        assert event.processed

    def test_callbacks_cleared_after_processing(self, env):
        event = env.event()
        event.succeed()
        env.run()
        assert event.callbacks is None

    def test_unhandled_failure_raises_from_run(self, env):
        event = env.event()
        event.fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()

    def test_defused_failure_does_not_raise(self, env):
        event = env.event()
        event.fail(RuntimeError("handled"))
        event.defused()
        env.run()  # no raise


class TestEventComposition:
    def test_and_creates_allof(self, env):
        from repro.sim.conditions import AllOf

        combined = env.event() & env.event()
        assert isinstance(combined, AllOf)

    def test_or_creates_anyof(self, env):
        from repro.sim.conditions import AnyOf

        combined = env.event() | env.event()
        assert isinstance(combined, AnyOf)


def test_pending_sentinel_repr():
    assert repr(PENDING) == "<PENDING>"


def test_event_knows_its_environment():
    env = Environment()
    event = Event(env)
    assert event.env is env
