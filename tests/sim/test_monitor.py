"""Unit tests for Monitor / StateMonitor."""

import math

import pytest

from repro.sim.monitor import Monitor, StateMonitor


class TestMonitor:
    def test_record_and_mean(self):
        monitor = Monitor("latency")
        for t, v in [(0, 10), (1, 20), (2, 30)]:
            monitor.record(t, v)
        assert monitor.mean() == 20.0
        assert len(monitor) == 3

    def test_empty_mean_is_nan(self):
        assert math.isnan(Monitor().mean())

    def test_percentile(self):
        monitor = Monitor()
        for v in range(1, 101):
            monitor.record(v, v)
        assert monitor.percentile(50) == pytest.approx(50.5)

    def test_empty_percentile_is_nan(self):
        assert math.isnan(Monitor().percentile(95))

    def test_arrays(self):
        monitor = Monitor()
        monitor.record(1.0, 5.0)
        assert monitor.times.tolist() == [1.0]
        assert monitor.values.tolist() == [5.0]

    def test_clear(self):
        monitor = Monitor()
        monitor.record(0, 1)
        monitor.clear()
        assert len(monitor) == 0

    def test_reset_aliases_clear(self):
        monitor = Monitor()
        monitor.record(0, 1)
        monitor.reset()
        assert len(monitor) == 0


class TestStateMonitor:
    def test_time_average_of_step_function(self):
        monitor = StateMonitor(initial=0.0, time=0.0)
        monitor.set(10, 2.0)  # 0 for [0,10), 2 for [10,20)
        assert monitor.time_average(until=20) == pytest.approx(1.0)

    def test_time_average_single_sample(self):
        monitor = StateMonitor(initial=5.0, time=3.0)
        assert monitor.time_average(until=3.0) == 5.0

    def test_time_backwards_rejected(self):
        monitor = StateMonitor(initial=0.0, time=10.0)
        with pytest.raises(ValueError):
            monitor.set(5.0, 1.0)

    def test_current(self):
        monitor = StateMonitor(initial=1.0)
        monitor.set(2.0, 7.0)
        assert monitor.current == 7.0

    def test_current_without_samples_raises(self):
        with pytest.raises(ValueError):
            _ = StateMonitor().current

    def test_empty_time_average_is_nan(self):
        assert math.isnan(StateMonitor().time_average(until=10))

    def test_samples_arrays(self):
        monitor = StateMonitor(initial=1.0, time=0.0)
        monitor.set(5.0, 3.0)
        times, states = monitor.samples()
        assert times.tolist() == [0.0, 5.0]
        assert states.tolist() == [1.0, 3.0]

    def test_zero_duration_window_returns_current_state(self):
        monitor = StateMonitor(initial=2.0, time=10.0)
        monitor.set(10.0, 6.0)  # same instant: window width is 0
        assert monitor.time_average(until=10.0) == 6.0

    def test_until_before_first_sample_returns_current_state(self):
        monitor = StateMonitor(initial=4.0, time=10.0)
        assert monitor.time_average(until=5.0) == 4.0

    def test_reset(self):
        monitor = StateMonitor(initial=1.0, time=0.0)
        monitor.set(5.0, 3.0)
        monitor.reset()
        assert math.isnan(monitor.time_average(until=10.0))
        monitor.set(2.0, 9.0)  # times may restart after a reset
        assert monitor.current == 9.0

    def test_reset_with_initial_reseeds(self):
        monitor = StateMonitor(initial=1.0, time=0.0)
        monitor.set(5.0, 3.0)
        monitor.reset(initial=7.0, time=100.0)
        assert monitor.current == 7.0
        assert monitor.time_average(until=200.0) == 7.0
