"""Unit tests for Resource / PriorityResource."""

import pytest

from repro.errors import SimulationError
from repro.sim.resources import PriorityResource, Resource


class TestResource:
    def test_grants_up_to_capacity(self, env):
        resource = Resource(env, capacity=2)
        granted_at = []

        def user(env, hold):
            with resource.request() as req:
                yield req
                granted_at.append(env.now)
                yield env.timeout(hold)

        for _ in range(3):
            env.process(user(env, 4))
        env.run()
        assert granted_at == [0.0, 0.0, 4.0]

    def test_fifo_grant_order(self, env):
        resource = Resource(env)
        order = []

        def user(env, name):
            with resource.request() as req:
                yield req
                order.append(name)
                yield env.timeout(1)

        for name in ("u1", "u2", "u3"):
            env.process(user(env, name))
        env.run()
        assert order == ["u1", "u2", "u3"]

    def test_count_tracks_holders(self, env):
        resource = Resource(env, capacity=2)

        def user(env):
            with resource.request() as req:
                yield req
                yield env.timeout(10)

        env.process(user(env))
        env.process(user(env))
        env.run(until=5)
        assert resource.count == 2

    def test_invalid_capacity(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_release_of_ungranted_request_cancels_it(self, env):
        resource = Resource(env, capacity=1)
        order = []

        def holder(env):
            with resource.request() as req:
                yield req
                yield env.timeout(10)

        def canceller(env):
            yield env.timeout(1)
            req = resource.request()
            resource.release(req)  # cancel while still waiting

        def third(env):
            yield env.timeout(2)
            with resource.request() as req:
                yield req
                order.append(("third", env.now))

        env.process(holder(env))
        env.process(canceller(env))
        env.process(third(env))
        env.run()
        assert order == [("third", 10.0)]

    def test_context_manager_releases_on_exit(self, env):
        resource = Resource(env)

        def user(env):
            with resource.request() as req:
                yield req
            assert resource.count == 0

        env.process(user(env))
        env.run()


class TestPriorityResource:
    def test_waiters_granted_by_priority(self, env):
        resource = PriorityResource(env)
        order = []

        def user(env, name, priority, start):
            yield env.timeout(start)
            with resource.request(priority=priority) as req:
                yield req
                order.append(name)
                yield env.timeout(10)

        env.process(user(env, "holder", 0, 0))
        env.process(user(env, "low", 5, 1))
        env.process(user(env, "high", 1, 2))
        env.run()
        # holder first, then high priority jumps the earlier low request
        assert order == ["holder", "high", "low"]

    def test_equal_priority_fifo(self, env):
        resource = PriorityResource(env)
        order = []

        def user(env, name):
            with resource.request(priority=1) as req:
                yield req
                order.append(name)
                yield env.timeout(1)

        for name in ("a", "b"):
            env.process(user(env, name))
        env.run()
        assert order == ["a", "b"]

    def test_cancel_waiting_priority_request(self, env):
        resource = PriorityResource(env)

        def holder(env):
            with resource.request() as req:
                yield req
                yield env.timeout(5)

        def canceller(env):
            yield env.timeout(1)
            req = resource.request(priority=0)
            resource.release(req)

        env.process(holder(env))
        env.process(canceller(env))
        env.run()
        assert resource.count == 0
