"""Unit tests for the named random stream factory."""

import numpy as np
import pytest

from repro.sim.rng import RandomStreams


class TestReproducibility:
    def test_same_seed_same_draws(self):
        a = RandomStreams(42).stream("workload")
        b = RandomStreams(42).stream("workload")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("workload")
        b = RandomStreams(2).stream("workload")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_streams_are_independent_by_name(self):
        streams = RandomStreams(0)
        a = streams.stream("alpha")
        b = streams.stream("beta")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_stream_memoised(self):
        streams = RandomStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_adding_stream_does_not_perturb_existing(self):
        s1 = RandomStreams(7)
        first = s1.stream("main")
        baseline = [first.random() for _ in range(3)]

        s2 = RandomStreams(7)
        s2.stream("other")  # created before "main" this time
        second = s2.stream("main")
        assert [second.random() for _ in range(3)] == baseline

    def test_none_seed_means_zero(self):
        assert RandomStreams(None).seed == 0

    def test_contains(self):
        streams = RandomStreams(0)
        assert "x" not in streams
        streams.stream("x")
        assert "x" in streams


class TestDistributions:
    def test_exponential_mean(self):
        stream = RandomStreams(0).stream("exp")
        draws = [stream.exponential(10.0) for _ in range(4000)]
        assert 9.0 < np.mean(draws) < 11.0
        assert all(d >= 0 for d in draws)

    def test_exponential_zero_mean_is_zero(self):
        stream = RandomStreams(0).stream("exp")
        assert stream.exponential(0) == 0.0

    def test_exponential_negative_mean_raises(self):
        stream = RandomStreams(0).stream("exp")
        with pytest.raises(ValueError):
            stream.exponential(-1)

    def test_uniform_bounds(self):
        stream = RandomStreams(0).stream("uni")
        draws = [stream.uniform(2, 5) for _ in range(500)]
        assert all(2 <= d <= 5 for d in draws)

    def test_integers_half_open(self):
        stream = RandomStreams(0).stream("int")
        draws = {stream.integers(0, 3) for _ in range(200)}
        assert draws == {0, 1, 2}

    def test_choice_uniformish(self):
        stream = RandomStreams(0).stream("choice")
        options = ["a", "b", "c"]
        draws = [stream.choice(options) for _ in range(300)]
        assert set(draws) == set(options)

    def test_choice_empty_raises(self):
        stream = RandomStreams(0).stream("choice")
        with pytest.raises(ValueError):
            stream.choice([])

    def test_shuffle_permutes_in_place(self):
        stream = RandomStreams(0).stream("shuffle")
        items = list(range(20))
        original = list(items)
        stream.shuffle(items)
        assert sorted(items) == original

    def test_zipf_uniform_when_theta_zero(self):
        stream = RandomStreams(0).stream("zipf")
        draws = [stream.zipf_index(4, 0.0) for _ in range(400)]
        assert set(draws) <= {0, 1, 2, 3}

    def test_zipf_skews_to_low_indices(self):
        stream = RandomStreams(0).stream("zipf")
        draws = [stream.zipf_index(10, 1.5) for _ in range(1000)]
        assert draws.count(0) > draws.count(9)

    def test_zipf_invalid_domain(self):
        stream = RandomStreams(0).stream("zipf")
        with pytest.raises(ValueError):
            stream.zipf_index(0, 1.0)

    def test_lognormal_positive(self):
        stream = RandomStreams(0).stream("ln")
        assert all(stream.lognormal(1.0, 0.5) > 0 for _ in range(100))
