"""Unit tests for Store / FilterStore / PriorityStore."""

import pytest

from repro.errors import SimulationError
from repro.sim.stores import FilterStore, PriorityItem, PriorityStore, Store


class TestStore:
    def test_put_then_get_fifo(self, env):
        store = Store(env)
        out = []

        def producer(env):
            for item in ("a", "b", "c"):
                yield store.put(item)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                out.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert out == ["a", "b", "c"]

    def test_get_blocks_until_item_available(self, env):
        store = Store(env)
        got_at = []

        def consumer(env):
            yield store.get()
            got_at.append(env.now)

        def producer(env):
            yield env.timeout(7)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got_at == [7.0]

    def test_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        put_times = []

        def producer(env):
            yield store.put(1)
            put_times.append(env.now)
            yield store.put(2)
            put_times.append(env.now)

        def consumer(env):
            yield env.timeout(5)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert put_times == [0.0, 5.0]

    def test_invalid_capacity(self, env):
        with pytest.raises(SimulationError):
            Store(env, capacity=0)

    def test_len_reflects_items(self, env):
        store = Store(env)

        def producer(env):
            yield store.put("x")

        env.process(producer(env))
        env.run()
        assert len(store) == 1

    def test_multiple_consumers_fifo(self, env):
        store = Store(env)
        served = []

        def consumer(env, name):
            item = yield store.get()
            served.append((name, item))

        def producer(env):
            yield env.timeout(1)
            yield store.put("first")
            yield store.put("second")

        env.process(consumer(env, "c1"))
        env.process(consumer(env, "c2"))
        env.process(producer(env))
        env.run()
        assert served == [("c1", "first"), ("c2", "second")]


class TestFilterStore:
    def test_filtered_get_skips_non_matching(self, env):
        store = FilterStore(env)
        out = []

        def consumer(env):
            item = yield store.get(lambda x: x % 2 == 0)
            out.append(item)

        def producer(env):
            yield store.put(1)
            yield store.put(3)
            yield store.put(4)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert out == [4]
        assert list(store.items) == [1, 3]

    def test_blocked_filter_does_not_starve_other_getters(self, env):
        store = FilterStore(env)
        out = []

        def never(env):
            yield store.get(lambda x: x == "unicorn")
            out.append("never")

        def eager(env):
            item = yield store.get()
            out.append(item)

        def producer(env):
            yield env.timeout(1)
            yield store.put("plain")

        env.process(never(env))
        env.process(eager(env))
        env.process(producer(env))
        env.run()
        assert out == ["plain"]

    def test_unfiltered_get_is_fifo(self, env):
        store = FilterStore(env)
        out = []

        def consumer(env):
            for _ in range(2):
                item = yield store.get()
                out.append(item)

        def producer(env):
            yield store.put("a")
            yield store.put("b")

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert out == ["a", "b"]


class TestPriorityStore:
    def test_lowest_priority_first(self, env):
        store = PriorityStore(env)
        out = []

        def producer(env):
            yield store.put(PriorityItem(3, "low"))
            yield store.put(PriorityItem(1, "high"))
            yield store.put(PriorityItem(2, "mid"))

        def consumer(env):
            yield env.timeout(1)  # let the producer fill the heap first
            for _ in range(3):
                item = yield store.get()
                out.append(item.item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert out == ["high", "mid", "low"]

    def test_equal_priority_fifo(self, env):
        store = PriorityStore(env)
        out = []

        def producer(env):
            for tag in ("first", "second", "third"):
                yield store.put(PriorityItem(5, tag))

        def consumer(env):
            yield env.timeout(1)
            for _ in range(3):
                item = yield store.get()
                out.append(item.item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert out == ["first", "second", "third"]


def test_priority_item_ordering():
    a = PriorityItem(1, "a")
    b = PriorityItem(2, "b")
    assert a < b
    assert not (b < a)


def test_priority_item_repr():
    assert "PriorityItem(1, 'x')" == repr(PriorityItem(1, "x"))
