"""Package-level quality gates: imports, docstrings, public API."""

import importlib
import pkgutil

import pytest

import repro

ALL_MODULES = [
    name
    for _finder, name, _is_pkg in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
]


class TestImports:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_every_module_imports(self, module_name):
        importlib.import_module(module_name)

    def test_package_has_version(self):
        assert repro.__version__


class TestDocstrings:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_every_module_has_a_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), (
            f"{module_name} lacks a module docstring"
        )

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_public_items_are_documented(self, module_name):
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", None)
        if not exported:
            return
        for name in exported:
            item = getattr(module, name)
            if isinstance(item, (int, float, str, tuple, dict, frozenset)):
                continue  # constants document themselves
            if not isinstance(item, type) and not callable(item):
                continue  # misc values
            if type(item).__module__ == "typing":
                continue  # type aliases (e.g. LockView)
            assert getattr(item, "__doc__", None), (
                f"{module_name}.{name} lacks a docstring"
            )


class TestPublicAPI:
    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_exports_resolve(self):
        for subpackage in (
            "repro.sim", "repro.net", "repro.agents", "repro.replication",
            "repro.core", "repro.baselines", "repro.runtime",
            "repro.workload", "repro.analysis", "repro.experiments",
        ):
            module = importlib.import_module(subpackage)
            for name in module.__all__:
                assert getattr(module, name) is not None, (
                    f"{subpackage}.{name} missing"
                )
