"""Tests for workload trace recording and replay."""

import pytest

from repro.analysis.consistency import audit
from repro.baselines.mcv import MajorityConsensusVoting
from repro.core.protocol import MARP
from repro.errors import WorkloadError
from repro.replication.deployment import Deployment
from repro.replication.requests import WRITE
from repro.workload import (
    ExponentialArrivals,
    OperationMix,
    TraceEntry,
    TraceReplayer,
    WorkloadTrace,
    record_workload,
    replay_onto,
)


def small_trace():
    return WorkloadTrace([
        TraceEntry(10.0, "s1", WRITE, "x", 1),
        TraceEntry(40.0, "s2", WRITE, "x", 2),
        TraceEntry(90.0, "s3", WRITE, "y", 3),
    ])


class TestReplay:
    def test_replays_exact_times_and_content(self):
        dep = Deployment(n_replicas=3, seed=0)
        marp = MARP(dep)
        records = replay_onto(marp, small_trace(), horizon=100_000)
        assert len(records) == 3
        assert [r.created_at for r in records.values()] == [10.0, 40.0, 90.0]
        assert all(r.status == "committed" for r in records.values())
        assert dep.server("s2").store.read("x").value == 2
        assert dep.server("s2").store.read("y").value == 3

    def test_same_trace_on_two_protocols_gives_same_state(self):
        trace = small_trace()

        def final_state(protocol_cls):
            dep = Deployment(n_replicas=3, seed=0)
            protocol = protocol_cls(dep)
            replay_onto(protocol, trace, horizon=200_000)
            assert audit(dep).consistent
            return {
                key: (vv.value, vv.version)
                for key, vv in dep.server("s1").store.snapshot().items()
            }

        assert final_state(MARP) == final_state(MajorityConsensusVoting)

    def test_record_then_replay_reproduces_commits(self):
        dep = Deployment(n_replicas=3, seed=4)
        marp = MARP(dep)
        trace = record_workload(
            marp,
            ExponentialArrivals(100.0),
            OperationMix(1.0),
            max_requests_per_client=3,
            until=200_000,
        )
        assert len(trace) == 9
        original = [r.status for r in marp.records]

        dep2 = Deployment(n_replicas=3, seed=999)  # different seed!
        marp2 = MARP(dep2)
        replayed = replay_onto(marp2, trace, horizon=400_000)
        assert [r.status for r in replayed.values()] == original
        # identical submission times regardless of the new seed (up to
        # float accumulation in the gap arithmetic)
        assert [r.created_at for r in replayed.values()] == pytest.approx(
            [e.at for e in trace]
        )

    def test_trace_round_trips_through_serialisation(self):
        trace = small_trace()
        restored = WorkloadTrace.loads(trace.dumps())
        dep = Deployment(n_replicas=3, seed=0)
        marp = MARP(dep)
        records = replay_onto(marp, restored, horizon=100_000)
        assert len(records) == 3

    def test_trace_in_the_past_rejected(self):
        dep = Deployment(n_replicas=3, seed=0)
        marp = MARP(dep)
        dep.run(until=1_000)  # clock is now at 1000ms
        with pytest.raises(WorkloadError):
            TraceReplayer(marp, small_trace())
