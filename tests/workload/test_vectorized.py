"""Vectorized workload generation: determinism and distribution shape.

The chunked data plane must be a pure performance change: batch draws
are element-wise identical to scalar draws from an equally-seeded
stream, the chunk size never leaks into what a client submits, and the
serial and process-pool engines agree on chunked runs bit-for-bit.
"""

import numpy as np
import pytest

from repro.experiments.cache import result_fingerprint
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import RunConfig, run_once
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import ExponentialArrivals, UniformArrivals
from repro.workload.mix import OperationMix


def _stream(name="vec-tests", seed=7):
    return RandomStreams(seed).stream(name)


class TestBatchScalarEquivalence:
    def test_exponential_batch_matches_scalar(self):
        batch = ExponentialArrivals(20.0).gaps(_stream(), 500)
        scalar = [
            ExponentialArrivals(20.0).next_gap(_stream())
            for _ in range(1)
        ]
        assert batch[0] == scalar[0]
        # and the whole batch equals 500 scalar draws from a twin stream
        twin = _stream()
        arrivals = ExponentialArrivals(20.0)
        expected = np.array([arrivals.next_gap(twin) for _ in range(500)])
        np.testing.assert_array_equal(batch, expected)

    def test_uniform_batch_matches_scalar(self):
        batch = UniformArrivals(5.0, 9.0).gaps(_stream(), 300)
        twin = _stream()
        arrivals = UniformArrivals(5.0, 9.0)
        expected = np.array([arrivals.next_gap(twin) for _ in range(300)])
        np.testing.assert_array_equal(batch, expected)

    def test_zipf_batch_matches_scalar(self):
        batch = _stream().zipf_indices(64, 0.95, 400)
        twin = _stream()
        expected = np.array([twin.zipf_index(64, 0.95) for _ in range(400)])
        np.testing.assert_array_equal(batch, expected)

    def test_uniform_key_batch_matches_scalar(self):
        # theta == 0 short-circuits to generator.integers; still must
        # consume the generator identically to scalar zipf_index calls.
        batch = _stream().zipf_indices(16, 0.0, 200)
        twin = _stream()
        expected = np.array([twin.zipf_index(16, 0.0) for _ in range(200)])
        np.testing.assert_array_equal(batch, expected)

    def test_mix_sample_batch_matches_scalar(self):
        mix = OperationMix(write_fraction=0.7, keys=tuple(
            f"k{i}" for i in range(32)
        ), key_skew=0.9)
        ops = _stream("ops")
        keys = _stream("keys")
        batch = mix.sample_batch(250, ops, keys)
        twin_mix = OperationMix(write_fraction=0.7, keys=tuple(
            f"k{i}" for i in range(32)
        ), key_skew=0.9)
        # Scalar twin: one uniform for the op, one for the key, drawn
        # from equally-seeded twin streams.
        twin_ops, twin_keys = _stream("ops"), _stream("keys")
        for op, key, _value in batch:
            want_write = twin_ops.random() < 0.7
            assert (op == "write") == want_write
            assert key == f"k{twin_keys.zipf_index(32, 0.9)}"


class TestZipfShape:
    def test_rank_frequency_slope(self):
        """log(freq) vs log(rank) slope ≈ -theta for a Zipf sample."""
        theta = 0.9
        sample = _stream().zipf_indices(512, theta, 200_000)
        counts = np.bincount(sample, minlength=512).astype(float)
        # fit over the well-populated head (top 64 ranks)
        ranks = np.arange(1, 65)
        freqs = np.sort(counts)[::-1][:64]
        slope = np.polyfit(np.log(ranks), np.log(freqs), 1)[0]
        assert -theta - 0.08 < slope < -theta + 0.08

    def test_theta_zero_is_uniform(self):
        sample = _stream().zipf_indices(32, 0.0, 100_000)
        counts = np.bincount(sample, minlength=32)
        assert counts.min() > 0.8 * (100_000 / 32)

    def test_cdf_cache_reused(self):
        from repro.sim import rng

        rng._ZIPF_CDF_CACHE.clear()
        s = _stream()
        s.zipf_indices(100, 0.8, 10)
        s.zipf_indices(100, 0.8, 10)
        assert len(rng._ZIPF_CDF_CACHE) == 1


class TestChunkInvariance:
    BASE = RunConfig(
        n_replicas=3, seed=21, mean_interarrival=40.0,
        requests_per_client=12, n_keys=8, key_skew=0.9,
    )

    def test_chunk_size_never_changes_the_run(self):
        # Chunked mode draws from dedicated per-field streams (not the
        # scalar path's interleaved stream), so the invariant is that
        # the chunk size — a pure batching knob — never changes what a
        # client submits. chunk=1 is the reference.
        def surface(config):
            result = run_once(config)
            base = min(r.request_id for r in result.records)
            return [
                (r.request_id - base, r.home, r.op, r.key,
                 r.created_at, r.completed_at, r.status)
                for r in result.records
            ]

        reference = surface(self.BASE.with_(workload_chunk=1))
        for chunk in (5, 64, 4096):
            chunked = surface(self.BASE.with_(workload_chunk=chunk))
            assert chunked == reference, f"chunk={chunk} changed the run"

    def test_chunk_invariance_under_truncation(self):
        # `until` cuts generation mid-chunk; the submitted prefix must
        # still be chunk-size-invariant.
        base = self.BASE.with_(horizon=400.0)
        reference = run_once(base.with_(workload_chunk=1))
        chunked = run_once(base.with_(workload_chunk=64))
        assert (
            [r.key for r in chunked.records]
            == [r.key for r in reference.records]
        )

    def test_serial_vs_pool_identical_for_chunked_runs(self):
        config = self.BASE.with_(workload_chunk=32)
        serial = run_once(config)
        with ParallelRunner(jobs=2) as runner:
            pooled = runner.run_one(config)
        assert result_fingerprint(pooled) == result_fingerprint(serial)


class TestValidation:
    def test_chunk_requires_field_streams(self):
        from repro.replication.deployment import Deployment
        from repro.replication.client import Client
        from repro.baselines import PrimaryCopy

        deployment = Deployment(n_replicas=3, seed=0)
        protocol = PrimaryCopy(deployment)
        with pytest.raises(Exception):
            Client(
                protocol, deployment.hosts[0],
                ExponentialArrivals(10.0), OperationMix(),
                deployment.streams.stream("c"), chunk=8,
            )
