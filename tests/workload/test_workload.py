"""Unit tests for arrival processes, operation mixes and traces."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.replication.requests import READ, WRITE
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import (
    DeterministicArrivals,
    ExponentialArrivals,
    UniformArrivals,
    make_arrivals,
)
from repro.workload.mix import OperationMix
from repro.workload.trace import TraceEntry, WorkloadTrace


@pytest.fixture
def stream():
    return RandomStreams(5).stream("workload-tests")


class TestArrivals:
    def test_exponential_mean(self, stream):
        arrivals = ExponentialArrivals(20.0)
        gaps = [arrivals.next_gap(stream) for _ in range(4000)]
        assert 18.0 < np.mean(gaps) < 22.0

    def test_exponential_validation(self):
        with pytest.raises(WorkloadError):
            ExponentialArrivals(0)

    def test_uniform_bounds(self, stream):
        arrivals = UniformArrivals(5.0, 10.0)
        assert all(5 <= arrivals.next_gap(stream) <= 10 for _ in range(200))

    def test_uniform_validation(self):
        with pytest.raises(WorkloadError):
            UniformArrivals(0, 10)
        with pytest.raises(WorkloadError):
            UniformArrivals(10, 5)

    def test_deterministic_fixed(self, stream):
        arrivals = DeterministicArrivals(7.0)
        assert [arrivals.next_gap(stream) for _ in range(3)] == [7.0] * 3

    def test_deterministic_validation(self):
        with pytest.raises(WorkloadError):
            DeterministicArrivals(0)

    def test_factory(self):
        assert isinstance(
            make_arrivals("exponential", mean=5.0), ExponentialArrivals
        )
        assert isinstance(
            make_arrivals("uniform", low=1, high=2), UniformArrivals
        )
        assert isinstance(
            make_arrivals("deterministic", interval=1), DeterministicArrivals
        )
        with pytest.raises(WorkloadError):
            make_arrivals("bursty")


class TestOperationMix:
    def test_all_writes(self, stream):
        mix = OperationMix(write_fraction=1.0)
        ops = {mix.sample(stream)[0] for _ in range(50)}
        assert ops == {WRITE}

    def test_all_reads(self, stream):
        mix = OperationMix(write_fraction=0.0)
        ops = {mix.sample(stream)[0] for _ in range(50)}
        assert ops == {READ}

    def test_mixed_fraction(self, stream):
        mix = OperationMix(write_fraction=0.5)
        ops = [mix.sample(stream)[0] for _ in range(1000)]
        write_rate = ops.count(WRITE) / len(ops)
        assert 0.4 < write_rate < 0.6

    def test_write_values_unique_increasing(self, stream):
        mix = OperationMix(write_fraction=1.0)
        values = [mix.sample(stream)[2] for _ in range(5)]
        assert values == [1, 2, 3, 4, 5]

    def test_reads_have_no_value(self, stream):
        mix = OperationMix(write_fraction=0.0)
        assert mix.sample(stream)[2] is None

    def test_default_single_key(self, stream):
        mix = OperationMix()
        assert mix.sample(stream)[1] == "x"

    def test_multiple_keys_all_hit(self, stream):
        mix = OperationMix(keys=["a", "b", "c"])
        keys = {mix.sample(stream)[1] for _ in range(200)}
        assert keys == {"a", "b", "c"}

    def test_zipf_skew_prefers_first_key(self, stream):
        mix = OperationMix(keys=[f"k{i}" for i in range(10)], key_skew=1.5)
        keys = [mix.sample(stream)[1] for _ in range(1000)]
        assert keys.count("k0") > keys.count("k9")

    def test_validation(self):
        with pytest.raises(WorkloadError):
            OperationMix(write_fraction=1.5)
        with pytest.raises(WorkloadError):
            OperationMix(key_skew=-1)
        with pytest.raises(WorkloadError):
            OperationMix(keys=[])


class TestWorkloadTrace:
    def test_record_in_order(self):
        trace = WorkloadTrace()
        trace.record(TraceEntry(1.0, "s1", WRITE, "x", 1))
        trace.record(TraceEntry(2.0, "s2", READ, "x"))
        assert len(trace) == 2

    def test_out_of_order_rejected(self):
        trace = WorkloadTrace()
        trace.record(TraceEntry(5.0, "s1", WRITE, "x", 1))
        with pytest.raises(WorkloadError):
            trace.record(TraceEntry(1.0, "s1", WRITE, "x", 2))

    def test_constructor_validates_order(self):
        with pytest.raises(WorkloadError):
            WorkloadTrace([
                TraceEntry(5.0, "s1", WRITE, "x", 1),
                TraceEntry(1.0, "s1", WRITE, "x", 2),
            ])

    def test_serialisation_round_trip(self):
        trace = WorkloadTrace([
            TraceEntry(1.0, "s1", WRITE, "x", 7),
            TraceEntry(2.5, "s2", READ, "y", None),
        ])
        restored = WorkloadTrace.loads(trace.dumps())
        assert restored.entries == trace.entries

    def test_loads_malformed(self):
        with pytest.raises(WorkloadError):
            WorkloadTrace.loads("not json at all {{")

    def test_for_home(self):
        trace = WorkloadTrace([
            TraceEntry(1.0, "s1", WRITE, "x", 1),
            TraceEntry(2.0, "s2", WRITE, "x", 2),
            TraceEntry(3.0, "s1", READ, "x"),
        ])
        assert len(trace.for_home("s1")) == 2
